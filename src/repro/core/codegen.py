"""Source-specialized matchers — ``match_strategy="codegen"``.

PR 3 compiled guard trees to *closures*; evaluation still walks plan
tuples and makes one Python call per guard per candidate.  This module
removes that interpretive layer entirely: for every (property, event
class) pair in the dispatch plans it emits straight-line Python source —
field reads hoisted into locals, constants folded into the compare
expressions, instance-store probes inlined against the store's own
dictionaries — and ``exec``'s the whole program once at build time.

Two generated entry points exist per concrete event class:

* ``_eval__<Cls>(event, fields)`` — the single-event evaluator bound as
  ``Monitor._evaluate``.  One function call per event, zero per guard.

* a columnar batch triple used by ``Monitor.observe_batch``: an
  *extractor* builds a :class:`ColumnarBatch` (one Python list per field
  for a chunk of same-class events, with packet field maps cached per
  packet object), a *create prefilter* matches stage-0 patterns against
  whole columns at once and returns per-event hit slots, and
  ``_evalb__<Cls>`` evaluates one event against its column row.  The
  prefilter is restricted to predicate-free stage-0 patterns, which are
  provably state-independent (spec validation forbids ``Var`` references
  at stage 0), so hoisting them before any timer fires cannot change
  results.

Equivalence is the design invariant, not an aspiration: the generated
code mirrors ``Monitor._evaluate_compiled`` branch for branch — the same
candidate iteration order, the same ``candidates_examined`` increments
(batched into one counter add per event), the same doomed-set and
key-filter semantics — and the Hypothesis differential suite holds all
three strategies to identical violations, counters, and ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..switch.events import (
    DataplaneEvent,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
)
from .compile import (
    _MISSING,
    bindable_source,
    dispatch_plan,
    guard_source,
    refinement_sources,
)
from .instances import (
    IndexedInstanceStore,
    InstanceStore,
    stage_index_plan,
    uid_var,
)
from .refs import EventPattern, MismatchAny, Predicate
from .spec import PropertySpec

#: event classes whose field map always carries a packet ``uid``.
_UID_CLASSES = (PacketArrival, PacketEgress, PacketDrop)

_INF = float("inf")
_NINF = float("-inf")


# ---------------------------------------------------------------------------
# Safe-compare helpers bound into the exec globals (CMP_HELPERS names)
# ---------------------------------------------------------------------------
def _lt(a, b):
    try:
        return bool(a < b)
    except TypeError:  # unorderable pair never satisfies
        return False


def _le(a, b):
    try:
        return bool(a <= b)
    except TypeError:
        return False


def _gt(a, b):
    try:
        return bool(a > b)
    except TypeError:
        return False


def _ge(a, b):
    try:
        return bool(a >= b)
    except TypeError:
        return False


# ---------------------------------------------------------------------------
# Program-level data
# ---------------------------------------------------------------------------
@dataclass
class PropEmission:
    """What the emitter actually generated for one property.

    The calibration cost model (:mod:`repro.lint.calibration`) carries an
    *estimated* twin of the first two numbers derived analytically from
    the dispatch plan; a test holds estimate and measurement equal.
    ``matcher_lines`` is measured-only — it counts emitted source lines
    attributable to the property across all generated functions.
    """

    name: str
    event_classes: int = 0
    inline_terms: int = 0
    matcher_lines: int = 0


@dataclass
class ColumnarBatch:
    """One chunk of same-class events, transposed into per-field columns.

    ``columns[i][j]`` is field ``i`` of event ``j`` (``_MISSING`` when the
    event lacks the field).  ``creates`` — present when the class carries
    prefiltered stage-0 watchers — holds one slot list per property:
    ``creates[p][j]`` is ``(env0, key)`` when event ``j`` matched property
    ``p``'s stage-0 pattern (and passed the key filter), else ``None``.
    """

    event_class: type
    events: List[DataplaneEvent]
    columns: Tuple[list, ...]
    creates: Optional[list]


@dataclass
class _BatchFns:
    extract: Callable
    create_batch: Optional[Callable]
    eval_batch: Callable


@dataclass
class CodegenProgram:
    """The exec'd program: generated functions plus their source."""

    source: str
    eval_fns: Dict[type, Callable]
    batch_fns: Dict[type, _BatchFns]
    emissions: Dict[str, PropEmission]
    exec_globals: Dict[str, object] = field(repr=False, default_factory=dict)

    def columnar(
        self,
        cls: type,
        events: List[DataplaneEvent],
        pf_cache: Dict[int, Dict[str, object]],
    ) -> Optional[ColumnarBatch]:
        """Build the columnar representation for one same-class chunk."""
        fns = self.batch_fns.get(cls)
        if fns is None:
            return None
        columns = fns.extract(events, pf_cache)
        creates = (
            fns.create_batch(events, columns)
            if fns.create_batch is not None else None
        )
        return ColumnarBatch(cls, events, columns, creates)


def pattern_terms(pattern: EventPattern) -> int:
    """Inline boolean terms one emitted matcher contributes.

    The measured side of the calibration model's ``inline_terms``:
    refinements and ``same_packet_as`` count one each, ``MismatchAny``
    counts one per pair, every other guard counts one.
    """
    n = 0
    if pattern.oob_kind is not None:
        n += 1
    if pattern.egress_action is not None:
        n += 1
    if pattern.not_egress_action is not None:
        n += 1
    if pattern.same_packet_as is not None:
        n += 1
    for guard in pattern.guards:
        n += len(guard.pairs) if isinstance(guard, MismatchAny) else 1
    return n


def _has_predicate(pattern: EventPattern) -> bool:
    return any(isinstance(g, Predicate) for g in pattern.guards)


# ---------------------------------------------------------------------------
# Emission plumbing
# ---------------------------------------------------------------------------
class _Writer:
    __slots__ = ("lines", "_ind")

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._ind = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self._ind + line if line else "")

    def ind(self) -> None:
        self._ind += 1

    def ded(self) -> None:
        self._ind -= 1


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


class _FieldMap:
    """Field name -> stable local name (and, by order, column index)."""

    def __init__(self) -> None:
        self.order: List[str] = []
        self._names: Dict[str, str] = {}
        self._used: set = set()
        self.record: Optional[set] = None

    def __call__(self, fieldname: str) -> str:
        name = self._names.get(fieldname)
        if name is None:
            base = "_f_" + _sanitize(fieldname)
            while base in self._used:
                base += "_"
            self._used.add(base)
            self._names[fieldname] = name = base
            self.order.append(fieldname)
        if self.record is not None:
            self.record.add(fieldname)
        return name

    def index(self, fieldname: str) -> int:
        return self.order.index(fieldname)


class _ConstPool:
    """Non-literal constants and predicate functions, bound as globals.

    Literals (None/bool/int/str/bytes and finite floats) fold into the
    source via ``repr``; everything else — enum members, addresses,
    predicate callables — binds to a deterministically numbered global
    (``_k<n>`` / ``_pd<n>``), keeping the emitted text stable across
    interpreter versions for the golden tests.
    """

    def __init__(self) -> None:
        self.globals: Dict[str, object] = {}
        self._ids: Dict[int, str] = {}
        self._nk = 0
        self._npd = 0

    def __call__(self, value: object) -> str:
        if value is None or value is True or value is False:
            return repr(value)
        t = type(value)
        if t in (int, str, bytes):
            return repr(value)
        if t is float and value == value and value not in (_INF, _NINF):
            return repr(value)
        name = self._ids.get(id(value))
        if name is None:
            if callable(value):
                name = f"_pd{self._npd}"
                self._npd += 1
            else:
                name = f"_k{self._nk}"
                self._nk += 1
            self._ids[id(value)] = name
            self.globals[name] = value
        return name


@dataclass
class _Sections:
    """One property's watchers for ONE event class, as raw patterns.

    The structural twin of ``monitor._PropPlan`` — same phase order
    (cancels in stage order with unless before discharge, then advances
    by stage, then create), but holding patterns for source emission
    instead of compiled closures.
    """

    cancels: List[Tuple[bool, int, Tuple[EventPattern, ...]]]
    advances: List[Tuple[int, EventPattern]]
    create: Optional[EventPattern]


def _sections_by_class(prop: PropertySpec) -> Dict[type, _Sections]:
    out: Dict[type, _Sections] = {}
    for cls, watchers in dispatch_plan(prop).items():
        unless_at: Dict[int, List[EventPattern]] = {}
        discharge_at: Dict[int, EventPattern] = {}
        advances: List[Tuple[int, EventPattern]] = []
        create: Optional[EventPattern] = None
        for watcher in watchers:
            if watcher.role == "unless":
                unless_at.setdefault(watcher.stage_idx, []).append(
                    watcher.pattern)
            elif watcher.role == "discharge":
                discharge_at[watcher.stage_idx] = watcher.pattern
            elif watcher.role == "advance":
                advances.append((watcher.stage_idx, watcher.pattern))
            else:
                create = watcher.pattern
        cancels: List[Tuple[bool, int, Tuple[EventPattern, ...]]] = []
        for stage_idx in sorted(set(unless_at) | set(discharge_at)):
            matchers = unless_at.get(stage_idx)
            if matchers:
                cancels.append((True, stage_idx, tuple(matchers)))
            pattern = discharge_at.get(stage_idx)
            if pattern is not None:
                cancels.append((False, stage_idx, (pattern,)))
        out[cls] = _Sections(
            cancels=cancels,
            advances=sorted(advances, key=lambda a: a[0]),
            create=create,
        )
    return out


@dataclass
class _Entry:
    pidx: int
    prop: PropertySpec
    store: InstanceStore
    refresh_ok: bool
    sections: _Sections


# ---------------------------------------------------------------------------
# The per-class emitter
# ---------------------------------------------------------------------------
class _ClassEmitter:
    """Emits all four functions for one concrete event class."""

    def __init__(
        self,
        cls: type,
        entries: List[_Entry],
        pool: _ConstPool,
        exec_globals: Dict[str, object],
        emissions: Dict[str, PropEmission],
        max_layer: int,
    ) -> None:
        self.cls = cls
        self.entries = entries
        self.pool = pool
        self.g = exec_globals
        self.emissions = emissions
        self.max_layer = max_layer
        self.fmap = _FieldMap()
        self.has_uid = cls in _UID_CLASSES
        self.has_create = any(e.sections.create is not None for e in entries)
        self.counts = any(
            e.sections.advances
            or any(not is_unless for is_unless, _, _ in e.sections.cancels)
            for e in entries
        )
        #: fields-dict column needed iff any emitted pattern carries a
        #: Predicate (predicates receive the full field Mapping).
        self.needs_fields = any(
            _has_predicate(p)
            for e in entries
            for p in self._all_patterns(e.sections)
        )
        #: properties whose stage-0 match is prefiltered columnarly —
        #: predicate-free create patterns only (state-independence proof).
        self.prefiltered: List[_Entry] = [
            e for e in entries
            if e.sections.create is not None
            and not _has_predicate(e.sections.create)
        ]
        self._slots = {id(e): j for j, e in enumerate(self.prefiltered)}
        self._term_sink: Optional[PropEmission] = None

    @staticmethod
    def _all_patterns(sec: _Sections):
        for _, _, patterns in sec.cancels:
            yield from patterns
        for _, pattern in sec.advances:
            yield pattern
        if sec.create is not None:
            yield sec.create

    # -- shared expression builders -------------------------------------
    def _matcher(self, pattern: EventPattern, env_expr: str,
                 fields_expr: str) -> str:
        """``match_instance`` (or ``guards_match``) as one expression."""
        terms: List[str] = []
        if pattern.same_packet_as is not None:
            uid_key = uid_var(pattern.same_packet_as)
            got = self.fmap("uid")
            terms.append(
                f"(_xp := {env_expr}.get({uid_key!r})) is not None")
            terms.append(f"{got} is not _M and {got} == _xp")
        terms.extend(refinement_sources(pattern, self.fmap, self.pool))
        terms.extend(
            guard_source(g, self.fmap, self.pool, env_expr, fields_expr)
            for g in pattern.guards
        )
        if self._term_sink is not None:
            self._term_sink.inline_terms += pattern_terms(pattern)
        return " and ".join(terms) if terms else "True"

    @staticmethod
    def _needs_env(patterns: Sequence[EventPattern]) -> bool:
        from .refs import FieldCmp, FieldEq, FieldNe, Var
        for pattern in patterns:
            if pattern.same_packet_as is not None:
                return True
            for guard in pattern.guards:
                if isinstance(guard, (FieldEq, FieldNe, FieldCmp)) \
                        and isinstance(guard.value, Var):
                    return True
                if isinstance(guard, MismatchAny) and any(
                    isinstance(ref, Var) for _, ref in guard.pairs
                ):
                    return True
                if isinstance(guard, Predicate):
                    return True
        return False

    def _binds_dict(self, pattern: EventPattern, uid_key: str) -> str:
        items = [f"{b.var!r}: {self.fmap(b.field)}" for b in pattern.binds]
        if self.has_uid:
            items.append(f"{uid_key!r}: {self.fmap('uid')}")
        return "{" + ", ".join(items) + "}"

    def _key_tuple(self, prop: PropertySpec) -> str:
        stage0 = prop.stages[0]
        var_field = {b.var: b.field for b in stage0.pattern.binds}
        parts = [self.fmap(var_field[v]) for v in prop.key_vars]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- candidate iteration wrappers -----------------------------------
    def _stage_pop_ref(self, entry: _Entry, stage_idx: int) -> str:
        """Bind one stage's population dict as a stable exec global.

        ``InstanceStore`` pre-creates the per-stage dicts and never
        replaces them, so the generated code can hold the dict itself —
        no ``_stage_pop.get`` per event.
        """
        name = f"_sp{entry.pidx}_{stage_idx}"
        if name not in self.g:
            self.g[name] = entry.store._stage_pop[stage_idx]
        return name

    def _emit_candidates(self, w: _Writer, entry: _Entry, stage_idx: int,
                         body: Callable[[], None]) -> None:
        """Inline the store's ``candidates(stage_idx, fields)`` probe.

        The bucket dictionaries referenced here are created once in the
        store's ``__init__`` and never replaced, so binding them as exec
        globals stays correct across instance churn and
        ``restore_state``.
        """
        p = entry.pidx
        store = entry.store
        if isinstance(store, IndexedInstanceStore):
            bk_name = f"_bk{p}_{stage_idx}"
            if bk_name not in self.g:
                self.g[bk_name] = store._buckets[stage_idx]
            plan = stage_index_plan(entry.prop.stages[stage_idx])
            if plan:
                presence = " and ".join(
                    f"{self.fmap(f)} is not _M" for f, _ in plan)
                parts = [self.fmap(f) for f, _ in plan]
                key = (
                    f"({parts[0]},)" if len(parts) == 1
                    else "(" + ", ".join(parts) + ")"
                )
                w.w(f"_bkt = {bk_name}")
                w.w("if _bkt:")
                w.ind()
                w.w(f"_hit = _bkt.get({key}) if {presence} else None")
                w.w("_scan = _bkt.get(None)")
                w.w("if _hit:")
                w.ind()
                w.w("for _inst in _hit.values():")
                w.ind()
                body()
                w.ded()
                w.ded()
                w.w("if _scan:")
                w.ind()
                w.w("for _inst in _scan.values():")
                w.ind()
                body()
                w.ded()
                w.ded()
                w.ded()
            else:
                w.w(f"_scan = {bk_name}.get(None)")
                w.w("if _scan:")
                w.ind()
                w.w("for _inst in _scan.values():")
                w.ind()
                body()
                w.ded()
                w.ded()
        else:  # linear store: candidates == at_stage
            sp = self._stage_pop_ref(entry, stage_idx)
            w.w(f"if {sp}:")
            w.ind()
            w.w(f"for _inst in {sp}.values():")
            w.ind()
            body()
            w.ded()
            w.ded()

    # -- section emitters -------------------------------------------------
    def _emit_unless(self, w: _Writer, entry: _Entry, stage_idx: int,
                     patterns: Tuple[EventPattern, ...],
                     fields_expr: str) -> None:
        p = entry.pidx
        # at_stage scan: every waiting instance, no candidate counting
        # (Feature 4 cancels the whole matching population).
        sp = self._stage_pop_ref(entry, stage_idx)
        w.w(f"if {sp}:")
        w.ind()
        w.w(f"for _inst in {sp}.values():")
        w.ind()
        w.w("if _d is not None and _inst.instance_id in _d:")
        w.ind()
        w.w("continue")
        w.ded()
        if self._needs_env(patterns):
            w.w("_env = _inst.env")
        cond = " or ".join(
            f"({self._matcher(pat, '_env', fields_expr)})"
            for pat in patterns
        )
        w.w(f"if {cond}:")
        w.ind()
        w.w("if _d is None:")
        w.ind()
        w.w("_d = set()")
        w.ded()
        w.w("_d.add(_inst.instance_id)")
        w.w(f'_ops.append(_Op("kill", _prop{p}, instance=_inst, '
            'reason="unless", time=_t))')
        w.ded()
        w.ded()
        w.ded()

    def _emit_discharge(self, w: _Writer, entry: _Entry, stage_idx: int,
                        pattern: EventPattern, fields_expr: str) -> None:
        p = entry.pidx
        matcher = self._matcher(pattern, "_env", fields_expr)
        needs_env = self._needs_env((pattern,))

        def body() -> None:
            w.w(f"if _inst.stage != {stage_idx} or "
                "(_d is not None and _inst.instance_id in _d):")
            w.ind()
            w.w("continue")
            w.ded()
            w.w("_nc += 1")
            if needs_env:
                w.w("_env = _inst.env")
            w.w(f"if {matcher}:")
            w.ind()
            w.w("if _d is None:")
            w.ind()
            w.w("_d = set()")
            w.ded()
            w.w("_d.add(_inst.instance_id)")
            w.w(f'_ops.append(_Op("kill", _prop{p}, instance=_inst, '
                'reason="discharged", time=_t))')
            w.ded()

        self._emit_candidates(w, entry, stage_idx, body)

    def _emit_advance(self, w: _Writer, entry: _Entry, stage_idx: int,
                      pattern: EventPattern, fields_expr: str) -> None:
        p = entry.pidx
        stage = entry.prop.stages[stage_idx]
        matcher = self._matcher(pattern, "_env", fields_expr)
        bindable = bindable_source(pattern, self.fmap)
        binds = self._binds_dict(pattern, uid_var(stage.name))
        needs_env = self._needs_env((pattern,))

        def body() -> None:
            w.w(f"if _inst.stage != {stage_idx} or "
                "(_d is not None and _inst.instance_id in _d):")
            w.ind()
            w.w("continue")
            w.ded()
            w.w("_nc += 1")
            if needs_env:
                w.w("_env = _inst.env")
            if matcher != "True":
                w.w(f"if not ({matcher}):")
                w.ind()
                w.w("continue")
                w.ded()
            if bindable != "True":
                w.w(f"if not ({bindable}):")
                w.ind()
                w.w("continue")
                w.ded()
            w.w(f"_b = {binds}")
            w.w("if _d is None:")
            w.ind()
            w.w("_d = set()")
            w.ded()
            w.w("_d.add(_inst.instance_id)")
            w.w(f'_ops.append(_Op("advance", _prop{p}, instance=_inst, '
                'binds=_b, event=_ev, time=_t))')

        self._emit_candidates(w, entry, stage_idx, body)

    def _emit_refresh_or_create(self, w: _Writer, entry: _Entry) -> None:
        """The by-key half of create, shared by inline and prefiltered
        paths (runs per event against current state)."""
        p = entry.pidx
        w.w(f"_ex = _byk{p}(_key)")
        if entry.refresh_ok:
            w.w("if _ex is not None and _ex.alive:")
            w.ind()
            w.w("if _ex.stage == 1 and "
                "(_d is None or _ex.instance_id not in _d):")
            w.ind()
            w.w(f'_ops.append(_Op("refresh", _prop{p}, instance=_ex, '
                'binds=_env0, event=_ev, time=_t))')
            w.ded()
            w.ded()
            w.w("else:")
            w.ind()
            w.w(f'_ops.append(_Op("create", _prop{p}, key=_key, env=_env0, '
                'event=_ev, time=_t))')
            w.ded()
        else:
            # Sound Absent timing: a repeat stage-0 match never refreshes.
            w.w("if _ex is None or not _ex.alive:")
            w.ind()
            w.w(f'_ops.append(_Op("create", _prop{p}, key=_key, env=_env0, '
                'event=_ev, time=_t))')
            w.ded()

    def _create_cond(self, entry: _Entry, fields_expr: str) -> str:
        pattern = entry.sections.create
        assert pattern is not None
        terms = []
        matcher = self._matcher(pattern, "_E", fields_expr)
        if matcher != "True":
            terms.append(matcher)
        bindable = bindable_source(pattern, self.fmap)
        if bindable != "True":
            terms.append(bindable)
        return " and ".join(terms) if terms else "True"

    def _env0_dict(self, entry: _Entry) -> str:
        pattern = entry.sections.create
        assert pattern is not None
        return self._binds_dict(
            pattern, uid_var(entry.prop.stages[0].name))

    def _emit_create_inline(self, w: _Writer, entry: _Entry,
                            fields_expr: str) -> None:
        cond = self._create_cond(entry, fields_expr)
        guarded = cond != "True"
        if guarded:
            w.w(f"if {cond}:")
            w.ind()
        w.w(f"_env0 = {self._env0_dict(entry)}")
        w.w(f"_key = {self._key_tuple(entry.prop)}")
        w.w(f"if _kf is None or _kf({entry.prop.name!r}, _key):")
        w.ind()
        self._emit_refresh_or_create(w, entry)
        w.ded()
        if guarded:
            w.ded()

    def _emit_prop_sections(self, w: _Writer, entry: _Entry,
                            fields_expr: str, batch_mode: bool) -> None:
        emission = self.emissions[entry.prop.name]
        start = len(w.lines)
        if not batch_mode:
            self._term_sink = emission
        w.w(f"# --- property {entry.prop.name!r} ---")
        w.w("_d = None")
        for is_unless, stage_idx, patterns in entry.sections.cancels:
            if is_unless:
                self._emit_unless(w, entry, stage_idx, patterns, fields_expr)
            else:
                self._emit_discharge(
                    w, entry, stage_idx, patterns[0], fields_expr)
        for stage_idx, pattern in entry.sections.advances:
            self._emit_advance(w, entry, stage_idx, pattern, fields_expr)
        if entry.sections.create is not None:
            if batch_mode and id(entry) in self._slots:
                j = self._slots[id(entry)]
                w.w(f"_cr = _creates[{j}][_i]")
                w.w("if _cr is not None:")
                w.ind()
                w.w("_env0, _key = _cr")
                self._emit_refresh_or_create(w, entry)
                w.ded()
            else:
                self._emit_create_inline(w, entry, fields_expr)
        self._term_sink = None
        emission.matcher_lines += len(w.lines) - start

    # -- the four functions -----------------------------------------------
    def emit_eval(self) -> Tuple[str, str]:
        """The single-event evaluator (returns (name, source))."""
        name = f"_eval__{self.cls.__name__}"
        body = _Writer()
        body.ind()
        for entry in self.entries:
            self._emit_prop_sections(body, entry, "_fields",
                                     batch_mode=False)
        head = _Writer()
        head.w(f"def {name}(_ev, _fields):")
        head.ind()
        head.w("_fg = _fields.get")
        for fieldname in self.fmap.order:
            head.w(f"{self.fmap(fieldname)} = _fg({fieldname!r}, _M)")
        head.w("_t = _ev.time")
        if self.has_create:
            head.w("_kf = _mon.key_filter")
        head.w("_ops = []")
        if self.counts:
            head.w("_nc = 0")
        tail = _Writer()
        tail.ind()
        if self.counts:
            tail.w("if _nc:")
            tail.ind()
            tail.w("_inc_cand(_nc)")
            tail.ded()
        tail.w("return _ops")
        return name, "\n".join(head.lines + body.lines + tail.lines)

    def emit_extract(self) -> Tuple[str, str]:
        """The column extractor — the only place event fields are read."""
        name = f"_extract__{self.cls.__name__}"
        w = _Writer()
        w.w(f"def {name}(_events, _pfc):")
        w.ind()
        ncols = len(self.fmap.order) + (1 if self.needs_fields else 0)
        for i in range(ncols):
            w.w(f"_c{i} = []")
            w.w(f"_a{i} = _c{i}.append")
        w.w("for _ev in _events:")
        w.ind()
        packet_cls = self.cls in _UID_CLASSES
        if packet_cls:
            w.w("_pkt = _ev.packet")
            w.w("_pid = id(_pkt)")
            w.w("_pf = _pfc.get(_pid)")
            w.w("if _pf is None:")
            w.ind()
            w.w(f"_pf = _pkt.fields(max_layer={self.max_layer})")
            w.w("_pfc[_pid] = _pf")
            w.ded()
            w.w("_pg = _pf.get")
        for i, fieldname in enumerate(self.fmap.order):
            expr = self._column_expr(fieldname)
            w.w(f"_a{i}({expr})  # {fieldname}")
        if self.needs_fields:
            # Predicates receive the full field Mapping; build it inline
            # (mirroring refs.event_fields for this class) so the cached
            # packet field map is reused instead of re-parsed.
            w.w("_fd = {'time': _ev.time, 'switch': _ev.switch_id}")
            if packet_cls:
                w.w("_fd.update(_pf)")
                w.w("_fd['in_port'] = _ev.in_port")
                if self.cls is PacketEgress:
                    w.w("_fd['out_port'] = _ev.out_port")
                    w.w("_fd['egress.action'] = _ev.action")
                elif self.cls is PacketDrop:
                    w.w("_fd['drop.reason'] = _ev.reason")
                w.w("_fd['uid'] = _pkt.uid")
            elif self.cls is OutOfBandEvent:
                w.w("_fd['oob.kind'] = _ev.oob_kind")
                w.w("if _ev.port is not None:")
                w.ind()
                w.w("_fd['oob.port'] = _ev.port")
                w.ded()
            w.w(f"_a{ncols - 1}(_fd)  # full fields (predicate guards)")
        w.ded()
        cols = ", ".join(f"_c{i}" for i in range(ncols))
        trailing = "," if ncols == 1 else ""
        w.w(f"return ({cols}{trailing})")
        return name, "\n".join(w.lines)

    def _column_expr(self, fieldname: str) -> str:
        """``event_fields`` for one field, specialized to the class.

        Mirrors :func:`repro.core.refs.event_fields` exactly: ``time`` and
        ``switch`` are written before the packet-field update (the packet
        dict wins on collision), event metadata after it (the event
        attribute wins).
        """
        cls = self.cls
        if cls in _UID_CLASSES:
            meta = {"uid": "_pkt.uid", "in_port": "_ev.in_port"}
            if cls is PacketEgress:
                meta["out_port"] = "_ev.out_port"
                meta["egress.action"] = "_ev.action"
            elif cls is PacketDrop:
                meta["drop.reason"] = "_ev.reason"
            if fieldname in meta:
                return meta[fieldname]
            if fieldname == "time":
                return "_pg('time', _ev.time)"
            if fieldname == "switch":
                return "_pg('switch', _ev.switch_id)"
            return f"_pg({fieldname!r}, _M)"
        if cls is OutOfBandEvent:
            return {
                "time": "_ev.time",
                "switch": "_ev.switch_id",
                "oob.kind": "_ev.oob_kind",
                "oob.port": "_M if _ev.port is None else _ev.port",
            }.get(fieldname, "_M")
        return "_M"  # pragma: no cover - no other class carries plans

    def emit_create_batch(self) -> Optional[Tuple[str, str]]:
        """The stage-0 prefilter: whole-column matching, hit indices out."""
        if not self.prefiltered:
            return None
        name = f"_createb__{self.cls.__name__}"
        w = _Writer()
        w.w(f"def {name}(_events, _cols):")
        w.ind()
        w.w("_n = len(_events)")
        w.w("_kf = _mon.key_filter")
        w.w("_out = []")
        hoisted: Dict[str, str] = {}
        real_fmap = self.fmap

        def colfx(fieldname: str) -> str:
            local = hoisted.get(fieldname)
            if local is None:
                idx = real_fmap.index(fieldname)
                local = f"_col{idx}"
                hoisted[fieldname] = local
                w.w(f"{local} = _cols[{idx}]")
            return f"{local}[_i]"

        for entry in self.prefiltered:
            emission = self.emissions[entry.prop.name]
            start = len(w.lines)
            w.w(f"# --- property {entry.prop.name!r} (stage-0 prefilter) ---")
            # Reroute field access through column reads for this block.
            self.fmap = colfx  # type: ignore[assignment]
            try:
                cond = self._create_cond(entry, "_E")
                env0 = self._env0_dict(entry)
                key = self._key_tuple(entry.prop)
            finally:
                self.fmap = real_fmap
            if cond == "True":
                w.w("_hits = range(_n)")
            else:
                w.w(f"_hits = [_i for _i in range(_n) if {cond}]")
            w.w("_r = [None] * _n")
            w.w("for _i in _hits:")
            w.ind()
            w.w(f"_env0 = {env0}")
            w.w(f"_key = {key}")
            w.w(f"if _kf is None or _kf({entry.prop.name!r}, _key):")
            w.ind()
            w.w("_r[_i] = (_env0, _key)")
            w.ded()
            w.ded()
            w.w("_out.append(_r)")
            emission.matcher_lines += len(w.lines) - start
        w.w("return _out")
        return name, "\n".join(w.lines)

    def emit_eval_batch(self) -> Tuple[str, str]:
        """Per-event evaluation against the columns (state-dependent)."""
        name = f"_evalb__{self.cls.__name__}"
        body = _Writer()
        body.ind()
        touched: set = set()
        self.fmap.record = touched
        for entry in self.entries:
            self._emit_prop_sections(body, entry, "_fields", batch_mode=True)
        self.fmap.record = None
        head = _Writer()
        head.w(f"def {name}(_ev, _cols, _i, _creates):")
        head.ind()
        for fieldname in self.fmap.order:
            if fieldname in touched:
                idx = self.fmap.index(fieldname)
                head.w(f"{self.fmap(fieldname)} = _cols[{idx}][_i]")
        needs_fields_here = any(
            _has_predicate(p)
            for e in self.entries
            for p in self._batch_patterns(e)
        )
        if needs_fields_here:
            head.w(f"_fields = _cols[{len(self.fmap.order)}][_i]")
        head.w("_t = _ev.time")
        if self.has_create:
            head.w("_kf = _mon.key_filter")
        head.w("_ops = []")
        if self.counts:
            head.w("_nc = 0")
        tail = _Writer()
        tail.ind()
        if self.counts:
            tail.w("if _nc:")
            tail.ind()
            tail.w("_inc_cand(_nc)")
            tail.ded()
        tail.w("return _ops")
        return name, "\n".join(head.lines + body.lines + tail.lines)

    def _batch_patterns(self, entry: _Entry):
        """Patterns evaluated inside ``_evalb`` (prefiltered creates are
        matched in ``_createb``, not here)."""
        sec = entry.sections
        for _, _, patterns in sec.cancels:
            yield from patterns
        for _, pattern in sec.advances:
            yield pattern
        if sec.create is not None and id(entry) not in self._slots:
            yield sec.create


# ---------------------------------------------------------------------------
# Program assembly
# ---------------------------------------------------------------------------
def build_program(
    entries: Sequence[Tuple[PropertySpec, InstanceStore, bool]],
    host,
    op_cls: type,
    inc_candidates: Callable[[float], None],
    max_layer: int = 7,
) -> CodegenProgram:
    """Emit, compile, and exec the full program for a monitor's properties.

    ``entries`` come in property registration order — the generated
    functions walk properties in exactly the order the compiled
    evaluator's ``_dispatch`` lists do, keeping op order (and therefore
    same-timestamp violation order) identical across strategies.
    """
    pool = _ConstPool()
    exec_globals: Dict[str, object] = {
        "_M": _MISSING,
        "_Op": op_cls,
        "_E": {},   # the empty env stage-0 predicates see (never written)
        "_mon": host,
        "_inc_cand": inc_candidates,
        "_lt": _lt,
        "_le": _le,
        "_gt": _gt,
        "_ge": _ge,
    }
    emissions: Dict[str, PropEmission] = {}
    by_class: Dict[type, List[_Entry]] = {}
    for pidx, (prop, store, refresh_ok) in enumerate(entries):
        exec_globals[f"_prop{pidx}"] = prop
        exec_globals[f"_byk{pidx}"] = store.by_key
        emissions[prop.name] = PropEmission(name=prop.name)
        sections = _sections_by_class(prop)
        emissions[prop.name].event_classes = len(sections)
        for cls, sec in sections.items():
            by_class.setdefault(cls, []).append(
                _Entry(pidx, prop, store, refresh_ok, sec))

    parts: List[str] = [
        "# repro codegen program (match_strategy=\"codegen\")",
        "# properties: " + ", ".join(
            prop.name for prop, _, _ in entries),
    ]
    eval_names: Dict[type, str] = {}
    batch_names: Dict[type, Tuple[str, Optional[str], str]] = {}
    for cls in sorted(by_class, key=lambda c: c.__name__):
        emitter = _ClassEmitter(
            cls, by_class[cls], pool, exec_globals, emissions, max_layer)
        ev_name, ev_src = emitter.emit_eval()
        ex_name, ex_src = emitter.emit_extract()
        cb = emitter.emit_create_batch()
        eb_name, eb_src = emitter.emit_eval_batch()
        parts.append("")
        parts.append(f"# ===== {cls.__name__} =====")
        parts.append(ev_src)
        parts.append("")
        parts.append(ex_src)
        if cb is not None:
            parts.append("")
            parts.append(cb[1])
        parts.append("")
        parts.append(eb_src)
        eval_names[cls] = ev_name
        batch_names[cls] = (ex_name, cb[0] if cb is not None else None,
                            eb_name)

    exec_globals.update(pool.globals)
    source = "\n".join(parts) + "\n"
    code = compile(source, "<repro-codegen>", "exec")
    exec(code, exec_globals)  # noqa: S102 - the whole point of this module
    eval_fns = {cls: exec_globals[name] for cls, name in eval_names.items()}
    batch_fns = {
        cls: _BatchFns(
            extract=exec_globals[ex],
            create_batch=exec_globals[cb] if cb is not None else None,
            eval_batch=exec_globals[eb],
        )
        for cls, (ex, cb, eb) in batch_names.items()
    }
    return CodegenProgram(
        source=source,
        eval_fns=eval_fns,
        batch_fns=batch_fns,
        emissions=emissions,
        exec_globals=exec_globals,
    )
