"""Value references, guards, and event patterns — the property IR's atoms.

A property (Sec. 2 of the paper) is a sequence of *observations*.  Each
observation matches a dataplane event via an :class:`EventPattern`:

* a ``kind`` (arrival / egress / drop / out-of-band / any packet event);
* ``guards`` — conditions over the event's flat field map, referencing
  constants or variables bound by *earlier* observations (this cross-stage
  data flow is what makes instance identification — Feature 8 — exact,
  symmetric, or wandering);
* ``binds`` — new variables captured from this event's fields;
* ``same_packet_as`` — packet-identity linkage (Feature 5): this event must
  carry the same packet uid as the named earlier observation;
* optional refinements on the egress action (unicast vs flood — matching
  the switch's own output decision) and the out-of-band kind.

Negative match (Feature 6) appears as :class:`FieldNe` and
:class:`MismatchAny` (the NAT property's "destination not equal to A, P",
which is a disjunction of inequalities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from ..switch.events import (
    DataplaneEvent,
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


class EventKind(Enum):
    """Which dataplane event class an observation watches."""

    ARRIVAL = "arrival"
    EGRESS = "egress"
    DROP = "drop"
    OOB = "oob"
    ANY_PACKET = "any-packet"


_KIND_TYPES = {
    EventKind.ARRIVAL: (PacketArrival,),
    EventKind.EGRESS: (PacketEgress,),
    EventKind.DROP: (PacketDrop,),
    EventKind.OOB: (OutOfBandEvent,),
    EventKind.ANY_PACKET: (PacketArrival, PacketEgress, PacketDrop),
}


def kind_matches(kind: EventKind, event: DataplaneEvent) -> bool:
    """Cheap pre-filter: could this event class ever match this kind?"""
    return isinstance(event, _KIND_TYPES[kind])


def kind_event_classes(kind: EventKind) -> Tuple[type, ...]:
    """The concrete event classes an :class:`EventKind` covers.

    The dispatch planner (:mod:`repro.core.compile`) registers each
    stage's watchers under exactly these classes, so an event reaches
    only the stages that could ever match it.
    """
    return _KIND_TYPES[kind]


def event_fields(event: DataplaneEvent, max_layer: int = 7) -> Dict[str, object]:
    """Flatten a dataplane event into the field map guards evaluate over.

    Packet events expose the packet's dotted fields (to ``max_layer`` — the
    parse-depth limit of Feature 1), plus event metadata: ``in_port``,
    ``out_port``, ``egress.action``, ``drop.reason``, ``oob.kind``,
    ``oob.port``, ``uid``, and ``time``.
    """
    fields: Dict[str, object] = {"time": event.time, "switch": event.switch_id}
    if isinstance(event, PacketArrival):
        fields.update(event.packet.fields(max_layer=max_layer))
        fields["in_port"] = event.in_port
        fields["uid"] = event.packet.uid
    elif isinstance(event, PacketEgress):
        fields.update(event.packet.fields(max_layer=max_layer))
        fields["in_port"] = event.in_port
        fields["out_port"] = event.out_port
        fields["egress.action"] = event.action
        fields["uid"] = event.packet.uid
    elif isinstance(event, PacketDrop):
        fields.update(event.packet.fields(max_layer=max_layer))
        fields["in_port"] = event.in_port
        fields["drop.reason"] = event.reason
        fields["uid"] = event.packet.uid
    elif isinstance(event, OutOfBandEvent):
        fields["oob.kind"] = event.oob_kind
        if event.port is not None:
            fields["oob.port"] = event.port
    elif isinstance(event, TimerFired):
        fields["timer.id"] = event.timer_id
    return fields


# ---------------------------------------------------------------------------
# Value references
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Var:
    """Reference to a variable bound by an earlier observation."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: object


ValueRef = Union[Var, Const]


def resolve(ref: ValueRef, env: Mapping[str, object]) -> object:
    if isinstance(ref, Var):
        if ref.name not in env:
            raise KeyError(f"unbound variable ${ref.name}")
        return env[ref.name]
    return ref.value


# ---------------------------------------------------------------------------
# Guards
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FieldEq:
    """``field == value`` (value may be a Var from an earlier stage)."""

    field: str
    value: ValueRef

    def holds(self, fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        if self.field not in fields:
            return False
        return fields[self.field] == resolve(self.value, env)


@dataclass(frozen=True)
class FieldNe:
    """``field != value`` — negative match (Feature 6)."""

    field: str
    value: ValueRef

    def holds(self, fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        if self.field not in fields:
            return True  # an absent field cannot equal the forbidden value
        return fields[self.field] != resolve(self.value, env)


#: ordered comparison operators, op text -> binary predicate
CMP_FNS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class FieldCmp:
    """``field < value`` (or ``<=`` / ``>`` / ``>=``) — ordered match.

    An absent field, or one whose value does not order against the
    reference (a string against an integer), never satisfies the guard.
    """

    field: str
    op: str  # "<" | "<=" | ">" | ">="
    value: ValueRef

    def __post_init__(self) -> None:
        if self.op not in CMP_FNS:
            raise ValueError(f"unknown ordered operator {self.op!r}")

    def holds(self, fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        if self.field not in fields:
            return False
        try:
            return bool(CMP_FNS[self.op](
                fields[self.field], resolve(self.value, env)))
        except TypeError:
            return False


@dataclass(frozen=True)
class MismatchAny:
    """At least one of the (field, ref) pairs differs.

    This is the NAT property's final guard: "destination not equal to A, P"
    — i.e. ``A'' != A  OR  P'' != P``.  All fields must be present for the
    comparison to be meaningful; a packet lacking them does not witness a
    mismatch.
    """

    pairs: Tuple[Tuple[str, ValueRef], ...]

    def holds(self, fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        if any(name not in fields for name, _ in self.pairs):
            return False
        return any(
            fields[name] != resolve(ref, env) for name, ref in self.pairs
        )


@dataclass(frozen=True)
class Predicate:
    """An arbitrary boolean over (event fields, environment).

    The escape hatch for conditions the structured guards cannot express
    (e.g. "requested address within the DHCP pool").  ``fields_used`` feeds
    the static analyzer so parse-depth requirements stay derivable.
    """

    fn: Callable[[Mapping[str, object], Mapping[str, object]], bool]
    description: str
    fields_used: Tuple[str, ...] = ()
    #: fields of *other* packets whose values the predicate's auxiliary
    #: state was built from (e.g. a knowledge base of DHCP leases consulted
    #: while matching ARP events).  They count toward the property's parse
    #: depth and drive the wandering-match classification.
    history_fields: Tuple[str, ...] = ()

    def holds(self, fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        return bool(self.fn(fields, env))


Guard = Union[FieldEq, FieldNe, FieldCmp, MismatchAny, Predicate]


@dataclass(frozen=True)
class Bind:
    """Capture ``field``'s value from the matched event into ``var``."""

    var: str
    field: str


# ---------------------------------------------------------------------------
# Event patterns
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EventPattern:
    """What one observation stage matches."""

    kind: EventKind
    guards: Tuple[Guard, ...] = ()
    binds: Tuple[Bind, ...] = ()
    same_packet_as: Optional[str] = None
    egress_action: Optional[EgressAction] = None
    not_egress_action: Optional[EgressAction] = None
    oob_kind: Optional[OobKind] = None

    def matches(
        self,
        event: DataplaneEvent,
        fields: Mapping[str, object],
        env: Mapping[str, object],
    ) -> bool:
        """Full guard evaluation (``same_packet_as`` checked by the engine,
        which knows the uid bound at the earlier stage)."""
        if not isinstance(event, _KIND_TYPES[self.kind]):
            return False
        if self.oob_kind is not None and fields.get("oob.kind") != self.oob_kind:
            return False
        if self.egress_action is not None and fields.get("egress.action") != self.egress_action:
            return False
        if (
            self.not_egress_action is not None
            and fields.get("egress.action") == self.not_egress_action
        ):
            return False
        return all(g.holds(fields, env) for g in self.guards)

    def capture(self, fields: Mapping[str, object]) -> Dict[str, object]:
        """Extract this pattern's bindings from a matched event's fields."""
        out: Dict[str, object] = {}
        for bind in self.binds:
            if bind.field not in fields:
                raise KeyError(
                    f"bind {bind.var}<-{bind.field}: field absent from event"
                )
            out[bind.var] = fields[bind.field]
        return out

    def bindable(self, fields: Mapping[str, object]) -> bool:
        """True if every bound field is present (a match can complete)."""
        return all(b.field in fields for b in self.binds)

    # -- introspection for the static analyzer ------------------------------
    def referenced_fields(self) -> Tuple[str, ...]:
        """Every field this pattern reads (guards + binds + predicates)."""
        names = []
        for guard in self.guards:
            if isinstance(guard, (FieldEq, FieldNe, FieldCmp)):
                names.append(guard.field)
            elif isinstance(guard, MismatchAny):
                names.extend(name for name, _ in guard.pairs)
            elif isinstance(guard, Predicate):
                names.extend(guard.fields_used)
                names.extend(guard.history_fields)
        names.extend(b.field for b in self.binds)
        return tuple(names)

    def env_guards(self) -> Tuple[Tuple[str, str], ...]:
        """(field, var) pairs where a guard equates a field with a Var —
        the data-flow edges instance identification is classified from."""
        out = []
        for guard in self.guards:
            if isinstance(guard, FieldEq) and isinstance(guard.value, Var):
                out.append((guard.field, guard.value.name))
        return tuple(out)

    def negative_env_refs(self) -> Tuple[Tuple[str, str], ...]:
        """(field, var) pairs referenced under negation (Feature 6)."""
        out = []
        for guard in self.guards:
            if isinstance(guard, FieldNe) and isinstance(guard.value, Var):
                out.append((guard.field, guard.value.name))
            elif isinstance(guard, MismatchAny):
                out.extend(
                    (name, ref.name)
                    for name, ref in guard.pairs
                    if isinstance(ref, Var)
                )
        return tuple(out)

    @property
    def has_negation(self) -> bool:
        return any(isinstance(g, (FieldNe, MismatchAny)) for g in self.guards)
