"""Provenance recording (Feature 10).

Once a violation fires, what can the monitor say about *how it got there*?
The paper identifies the spectrum:

* ``NONE``    — only the final trigger event is reported;
* ``LIMITED`` — "recovered without added cost": the values already retained
  for matching (the instance's bound variables) ride along with the final
  event, plus per-stage timestamps — cheap, because the match state already
  holds them;
* ``FULL``    — every event that advanced the instance is recorded
  verbatim.  Maximal debuggability, linear memory per instance — the cost
  the paper deems infeasible on switches, measurable here via
  ``benchmarks/bench_provenance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from ..switch.events import DataplaneEvent


class ProvenanceLevel(Enum):
    NONE = "none"
    LIMITED = "limited"
    FULL = "full"


@dataclass(frozen=True)
class StageRecord:
    """One stage's contribution to an instance's history."""

    stage_name: str
    time: float
    event: Optional[DataplaneEvent] = None  # populated only at FULL
    summary: str = ""

    def describe(self) -> str:
        if self.event is not None:
            return f"[{self.time:.6f}] {self.stage_name}: {self.event!r}"
        return f"[{self.time:.6f}] {self.stage_name}: {self.summary}"


def record_stage(
    level: ProvenanceLevel,
    stage_name: str,
    time: float,
    event: Optional[DataplaneEvent],
) -> Optional[StageRecord]:
    """Build the provenance record one advancement contributes (or None)."""
    if level is ProvenanceLevel.NONE:
        return None
    if level is ProvenanceLevel.FULL:
        return StageRecord(stage_name=stage_name, time=time, event=event)
    summary = ""
    if event is not None:
        packet = getattr(event, "packet", None)
        summary = packet.describe() if packet is not None else event.kind
    else:
        summary = "timer"
    return StageRecord(stage_name=stage_name, time=time, summary=summary)
