"""Property specifications: sequences of observation stages.

A :class:`PropertySpec` is the monitor-facing form of a correctness
property: an ordered tuple of stages whose completion *witnesses a
violation* (the paper defines a property by the event trace that violates
it).  Two stage flavours:

* :class:`Observe` — a positive observation: an event matching the pattern
  advances the instance.  ``within`` attaches an ordinary timeout (Feature
  3): if the stage is not matched within T seconds of reaching it, the
  instance silently expires.  ``unless`` patterns (Feature 4, persistent
  obligation) cancel the instance while it waits here — e.g. "until the
  connection is closed".

* :class:`Absent` — a negative observation (Feature 7, timeout actions):
  the stage is satisfied when ``within`` seconds elapse *without* an event
  matching the pattern; the timer firing advances the instance (a violation,
  if final).  An event matching the pattern instead discharges the
  obligation and kills the instance.  ``refresh`` controls the subtlety the
  paper calls out: with ``"on_prior"`` the timer resets whenever the prior
  observation re-fires — which misses a never-answered request storm sent
  every T−1 seconds — while the sound default ``"never"`` lets the original
  deadline stand.

Instances are keyed by ``key_vars`` (defaulting to everything stage 0
binds); re-matching stage 0 with an existing key *refreshes* that instance
(re-binding variables and resetting its stage-1 timer) rather than
duplicating it — the "separate timers for each A, B pair, reset whenever a
new A→B packet is seen" semantics of Feature 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple, Union

from .refs import Bind, EventKind, EventPattern, Var


class SpecError(ValueError):
    """Raised for malformed property specifications."""


@dataclass(frozen=True)
class Observe:
    """A positive observation stage."""

    name: str
    pattern: EventPattern
    within: Optional[float] = None
    unless: Tuple[EventPattern, ...] = ()
    refresh_on_repeat: bool = True

    @property
    def is_negative(self) -> bool:
        return False


@dataclass(frozen=True)
class Absent:
    """A negative observation stage (timeout action, Feature 7).

    ``semantic_deadline`` records whether the duration is part of the
    property's *statement* (DHCP's "reply within T seconds") or merely a
    practicality the monitor imposes to make checking finite (the ARP
    proxy's maximum wait).  The static analyzer uses it to decide whether
    the property requires ordinary Timeouts (Feature 3) in addition to
    Timeout Actions (Feature 7), matching Table 1's columns.
    """

    name: str
    pattern: EventPattern
    within: float = 1.0
    refresh: str = "never"  # "never" (sound) or "on_prior" (the buggy reset)
    semantic_deadline: bool = False
    unless: Tuple[EventPattern, ...] = ()

    def __post_init__(self) -> None:
        if self.within <= 0:
            raise SpecError(f"Absent stage {self.name!r} needs within > 0")
        if self.refresh not in ("never", "on_prior"):
            raise SpecError(f"bad refresh policy {self.refresh!r}")

    @property
    def is_negative(self) -> bool:
        return True


Stage = Union[Observe, Absent]


@dataclass(frozen=True)
class PropertySpec:
    """A complete monitorable property.

    ``obligation_override`` exists because the paper's Feature 4
    ("persistent obligation") is a semantic judgement about the property's
    *statement* — whether the monitor holds a pending response that may
    never arrive — which is not always decidable from structure alone.
    When None, the analyzer derives it from the presence of ``unless``
    cancellation patterns; Table-1 catalog entries set it explicitly where
    the paper's hand classification differs, each with a comment saying
    why.  ``match_kind_override`` plays the same role for the one Table-1
    row whose paper classification differs from the structural rule (see
    :mod:`repro.props.dhcp`).
    """

    name: str
    description: str
    stages: Tuple[Stage, ...]
    key_vars: Tuple[str, ...] = ()
    violation_message: str = ""
    obligation_override: Optional[bool] = None
    match_kind_override: Optional[str] = None  # a MatchKind value string

    def __post_init__(self) -> None:
        if not self.stages:
            raise SpecError(f"property {self.name!r} has no stages")
        first = self.stages[0]
        if isinstance(first, Absent):
            raise SpecError(
                f"property {self.name!r}: first stage must be a positive "
                "observation (something has to create the instance)"
            )
        if first.within is not None:
            raise SpecError(
                f"property {self.name!r}: stage 0 cannot carry a timeout "
                "(there is no prior stage to time from)"
            )
        self._check_bindings()
        if not self.key_vars:
            object.__setattr__(
                self, "key_vars", tuple(b.var for b in first.pattern.binds)
            )
        bound0 = {b.var for b in first.pattern.binds}
        missing = [v for v in self.key_vars if v not in bound0]
        if missing:
            raise SpecError(
                f"property {self.name!r}: key vars {missing} not bound by stage 0"
            )
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise SpecError(f"property {self.name!r}: duplicate stage names")

    def _check_bindings(self) -> None:
        """Every Var a stage references must be bound by an earlier stage."""
        bound: Set[str] = set()
        seen_stage_names: Set[str] = set()
        for index, stage in enumerate(self.stages):
            pattern = stage.pattern
            self._check_pattern_vars(pattern, bound, index)
            if pattern.same_packet_as is not None:
                if pattern.same_packet_as not in seen_stage_names:
                    raise SpecError(
                        f"property {self.name!r} stage {stage.name!r}: "
                        f"same_packet_as references unknown stage "
                        f"{pattern.same_packet_as!r}"
                    )
            for unless in getattr(stage, "unless", ()):
                self._check_pattern_vars(unless, bound, index)
            bound.update(b.var for b in pattern.binds)
            seen_stage_names.add(stage.name)

    def _check_pattern_vars(
        self, pattern: EventPattern, bound: Set[str], stage_index: int
    ) -> None:
        from .refs import FieldCmp, FieldEq, FieldNe, MismatchAny

        for guard in pattern.guards:
            refs = []
            if isinstance(guard, (FieldEq, FieldNe, FieldCmp)) \
                    and isinstance(guard.value, Var):
                refs.append(guard.value.name)
            elif isinstance(guard, MismatchAny):
                refs.extend(
                    ref.name for _, ref in guard.pairs if isinstance(ref, Var)
                )
            for name in refs:
                if name not in bound:
                    raise SpecError(
                        f"property {self.name!r} stage {stage_index}: "
                        f"guard references unbound variable ${name}"
                    )

    # -- introspection -------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_index(self, name: str) -> int:
        for i, stage in enumerate(self.stages):
            if stage.name == name:
                return i
        raise KeyError(name)

    def bound_vars(self) -> Tuple[str, ...]:
        out = []
        for stage in self.stages:
            out.extend(b.var for b in stage.pattern.binds)
        return tuple(out)

    def var_origin(self) -> Dict[str, str]:
        """Map each variable to the field it was bound from (first binding).

        The static analyzer classifies instance identification (Feature 8)
        from these data-flow edges.
        """
        origin: Dict[str, str] = {}
        for stage in self.stages:
            for bind in stage.pattern.binds:
                origin.setdefault(bind.var, bind.field)
        return origin


def refresh_applies(prop: PropertySpec) -> bool:
    """Whether re-matching stage 0 refreshes an existing keyed instance.

    A repeat observation restarts the clock only when the property opted
    in (``refresh_on_repeat``) *and* refreshing is sound for the next
    stage: for an ``Absent`` stage the paper's Sec. 3.2 bug is exactly an
    unconditional reset, so only the explicit ``refresh="on_prior"``
    policy re-arms the timer.  Shared by the monitor's evaluators and the
    codegen backend so all strategies fold the same policy.
    """
    stage0 = prop.stages[0]
    if not stage0.refresh_on_repeat or prop.num_stages < 2:
        return False
    stage1 = prop.stages[1]
    if isinstance(stage1, Absent):
        return stage1.refresh == "on_prior"
    return True
