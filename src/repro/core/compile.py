"""Pattern compilation and event dispatch planning — the monitor fast path.

Sec. 3.3 of the paper argues that *matching* cost, not state size, is
what makes on-switch property monitoring expensive; FAST and OpenState
make the same bet by pre-compiling match logic into tables instead of
interpreting it per packet.  This module is the engine-side analogue:

* :func:`compile_pattern` turns an :class:`~repro.core.refs.EventPattern`
  — a tree of guard dataclasses walked via ``isinstance`` and
  :func:`~repro.core.refs.resolve` on every event — into a
  :class:`CompiledPattern` of specialized closures.  Constant guards are
  folded at compile time (the ``Const`` wrapper disappears), environment
  lookups are hoisted to direct dict accesses on pre-extracted variable
  names, and the ``same_packet_as`` uid linkage is inlined with its env
  key precomputed.

* :func:`dispatch_plan` maps each *concrete* dataplane event class to the
  exact ``(stage, role)`` watchers of a property that could ever match
  it.  The monitor unions these per event class at ``add_property`` time,
  so ``observe()`` touches only the stages that can react to the event
  instead of the full property × stage cross-product.  The linter reads
  the same plan (:func:`dispatch_summary`) to price how many watchers a
  property puts on each event kind — and to flag stages that force
  full-population scans on hot packet kinds.

The interpreted path (``EventPattern.matches`` et al.) stays available as
the ``match_strategy="interpreted"`` ablation, mirroring the
indexed/linear instance-store split: the compiled path is an
optimization, never a semantic change, and a Hypothesis differential test
holds the two to byte-identical verdicts and counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple, Type

from ..switch.events import DataplaneEvent
from .instances import stage_index_plan, uid_var
from .refs import (
    CMP_FNS,
    EventPattern,
    FieldCmp,
    FieldEq,
    FieldNe,
    MismatchAny,
    Predicate,
    Var,
    kind_event_classes,
)
from .spec import Absent, PropertySpec, Stage

#: Sentinel distinguishing "field absent" from any real field value.
_MISSING = object()

GuardCheck = Callable[[Mapping[str, object], Mapping[str, object]], bool]


# ---------------------------------------------------------------------------
# Guard compilation
# ---------------------------------------------------------------------------
def _compile_guard(guard) -> GuardCheck:
    """One guard dataclass -> one closure, branches resolved up front."""
    if isinstance(guard, FieldEq):
        field = guard.field
        if isinstance(guard.value, Var):
            name = guard.value.name

            def check(fields, env, _f=field, _n=name, _M=_MISSING):
                got = fields.get(_f, _M)
                return got is not _M and got == env[_n]

            return check
        value = guard.value.value  # constant folded

        def check(fields, env, _f=field, _v=value, _M=_MISSING):
            got = fields.get(_f, _M)
            return got is not _M and got == _v

        return check
    if isinstance(guard, FieldNe):
        field = guard.field
        if isinstance(guard.value, Var):
            name = guard.value.name

            def check(fields, env, _f=field, _n=name, _M=_MISSING):
                got = fields.get(_f, _M)
                # an absent field cannot equal the forbidden value
                return got is _M or got != env[_n]

            return check
        value = guard.value.value

        def check(fields, env, _f=field, _v=value, _M=_MISSING):
            got = fields.get(_f, _M)
            return got is _M or got != _v

        return check
    if isinstance(guard, FieldCmp):
        field = guard.field
        cmp = CMP_FNS[guard.op]
        if isinstance(guard.value, Var):
            name = guard.value.name

            def check(fields, env, _f=field, _n=name, _c=cmp, _M=_MISSING):
                got = fields.get(_f, _M)
                if got is _M:
                    return False
                try:
                    return bool(_c(got, env[_n]))
                except TypeError:  # unorderable pair never satisfies
                    return False

            return check
        value = guard.value.value  # constant folded

        def check(fields, env, _f=field, _v=value, _c=cmp, _M=_MISSING):
            got = fields.get(_f, _M)
            if got is _M:
                return False
            try:
                return bool(_c(got, _v))
            except TypeError:
                return False

        return check
    if isinstance(guard, MismatchAny):
        # (field, getter) pairs: the getter resolves the expected value
        # from the env (or is a folded constant).
        pairs = tuple(
            (
                name,
                (lambda env, _n=ref.name: env[_n])
                if isinstance(ref, Var)
                else (lambda env, _v=ref.value: _v),
            )
            for name, ref in guard.pairs
        )

        def check(fields, env, _pairs=pairs):
            for name, _ in _pairs:
                if name not in fields:
                    return False  # a packet lacking the fields is no witness
            for name, expected in _pairs:
                if fields[name] != expected(env):
                    return True
            return False

        return check
    if isinstance(guard, Predicate):
        return guard.fn
    raise TypeError(f"cannot compile guard {guard!r}")  # pragma: no cover


def _compile_refinements(pattern: EventPattern) -> List[GuardCheck]:
    """The oob-kind / egress-action refinements as field checks."""
    checks: List[GuardCheck] = []
    if pattern.oob_kind is not None:
        checks.append(
            lambda fields, env, _k=pattern.oob_kind:
            fields.get("oob.kind") == _k)
    if pattern.egress_action is not None:
        checks.append(
            lambda fields, env, _a=pattern.egress_action:
            fields.get("egress.action") == _a)
    if pattern.not_egress_action is not None:
        checks.append(
            lambda fields, env, _a=pattern.not_egress_action:
            fields.get("egress.action") != _a)
    return checks


def _compose(checks: List[GuardCheck]) -> GuardCheck:
    """Fuse a check list into one closure (small arities unrolled)."""
    if not checks:
        return lambda fields, env: True
    if len(checks) == 1:
        return checks[0]
    if len(checks) == 2:
        c0, c1 = checks

        def fused(fields, env, _c0=c0, _c1=c1):
            return _c0(fields, env) and _c1(fields, env)

        return fused
    if len(checks) == 3:
        c0, c1, c2 = checks

        def fused(fields, env, _c0=c0, _c1=c1, _c2=c2):
            return (_c0(fields, env) and _c1(fields, env)
                    and _c2(fields, env))

        return fused
    frozen = tuple(checks)

    def fused(fields, env, _checks=frozen):
        for check in _checks:
            if not check(fields, env):
                return False
        return True

    return fused


# ---------------------------------------------------------------------------
# Pattern compilation
# ---------------------------------------------------------------------------
class CompiledPattern:
    """Specialized closures for one :class:`EventPattern`.

    * ``guards_match(fields, env)`` — refinements + guards, no kind check
      (dispatch already guarantees the event class);
    * ``matches(event, fields, env)`` — full parity with the interpreted
      ``EventPattern.matches`` including the kind check;
    * ``match_instance(fields, instance)`` — guards against an instance's
      env with the ``same_packet_as`` uid comparison inlined;
    * ``capture(fields)`` / ``bindable(fields)`` — binds as pre-extracted
      ``(var, field)`` pairs.
    """

    __slots__ = (
        "pattern",
        "guards_match",
        "matches",
        "match_instance",
        "capture",
        "bindable",
    )

    def __init__(self, pattern: EventPattern) -> None:
        self.pattern = pattern
        checks = _compile_refinements(pattern)
        checks.extend(_compile_guard(g) for g in pattern.guards)
        guards_match = _compose(checks)
        self.guards_match = guards_match

        kind_types = kind_event_classes(pattern.kind)

        def matches(event, fields, env, _types=kind_types, _gm=guards_match):
            return isinstance(event, _types) and _gm(fields, env)

        self.matches = matches

        if pattern.same_packet_as is None:

            def match_instance(fields, instance, _gm=guards_match):
                return _gm(fields, instance.env)

        else:
            uid_key = uid_var(pattern.same_packet_as)

            def match_instance(fields, instance, _gm=guards_match,
                               _uid_key=uid_key):
                expected = instance.env.get(_uid_key)
                if expected is None or fields.get("uid") != expected:
                    return False
                return _gm(fields, instance.env)

        self.match_instance = match_instance

        bind_pairs = tuple((b.var, b.field) for b in pattern.binds)
        if not bind_pairs:
            self.capture = lambda fields: {}
            self.bindable = lambda fields: True
        else:
            bind_fields = tuple(f for _, f in bind_pairs)

            def capture(fields, _pairs=bind_pairs):
                try:
                    return {var: fields[f] for var, f in _pairs}
                except KeyError as exc:
                    raise KeyError(
                        f"bind: field {exc.args[0]!r} absent from event"
                    ) from None

            def bindable(fields, _fields=bind_fields):
                for f in _fields:
                    if f not in fields:
                        return False
                return True

            self.capture = capture
            self.bindable = bindable


def compile_pattern(pattern: EventPattern) -> CompiledPattern:
    """Compile one event pattern into its closure bundle."""
    return CompiledPattern(pattern)


# ---------------------------------------------------------------------------
# Dispatch planning
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Watcher:
    """One (stage, role) pair that an event class could ever trigger.

    ``indexed`` records whether the stage's instance lookup is a hash
    probe (its index plan is non-empty) or a full scan of the stage
    population — the distinction the hot-scan lint warns about.
    """

    stage_idx: int
    role: str  # "create" | "advance" | "discharge" | "unless"
    pattern: EventPattern
    indexed: bool


def dispatch_plan(
    prop: PropertySpec,
) -> Dict[Type[DataplaneEvent], Tuple[Watcher, ...]]:
    """Concrete event class -> the property's watchers for that class.

    Roles follow the engine's evaluation phases: ``unless``/``discharge``
    cancellations, ``advance`` for positive stages, ``create`` for stage
    0.  A class absent from the mapping can never affect the property —
    the monitor skips it entirely.
    """
    plan: Dict[Type[DataplaneEvent], List[Watcher]] = {}

    def register(watcher: Watcher) -> None:
        for cls in kind_event_classes(watcher.pattern.kind):
            plan.setdefault(cls, []).append(watcher)

    for stage_idx, stage in enumerate(prop.stages):
        if stage_idx == 0:
            register(Watcher(0, "create", stage.pattern, True))
            continue
        indexed = bool(stage_index_plan(stage))
        for unless in getattr(stage, "unless", ()):
            # unless scans the stage population by design (Feature 4
            # cancels every waiting instance the pattern matches).
            register(Watcher(stage_idx, "unless", unless, False))
        if isinstance(stage, Absent):
            register(Watcher(stage_idx, "discharge", stage.pattern, indexed))
        else:
            register(Watcher(stage_idx, "advance", stage.pattern, indexed))
    return {cls: tuple(ws) for cls, ws in plan.items()}


# ---------------------------------------------------------------------------
# Source emission (the codegen backend — repro.core.codegen assembles these)
# ---------------------------------------------------------------------------
#: FieldCmp operator -> the safe-compare helper the generated source calls
#: (bound into the exec globals by repro.core.codegen).
CMP_HELPERS = {"<": "_lt", "<=": "_le", ">": "_gt", ">=": "_ge"}


def guard_source(guard, fx, const, env_expr: str, fields_expr: str) -> str:
    """One guard dataclass -> one inline boolean expression.

    The textual twin of :func:`_compile_guard`, branch for branch: the
    same absence semantics (``_M`` is the missing-field sentinel), the
    same constant folding (literals inline, other values bound as exec
    globals via ``const``), the same TypeError-swallowing ordered
    compares (via the :data:`CMP_HELPERS` functions).

    ``fx`` maps a field name to its access expression — a hoisted local
    in the per-event matcher, a column index in the batch matcher —
    which is what makes the emitted compare straight-line: no per-event
    dict lookups survive into the hot expression.
    """
    if isinstance(guard, FieldEq):
        got = fx(guard.field)
        val = (f"{env_expr}[{guard.value.name!r}]"
               if isinstance(guard.value, Var) else const(guard.value.value))
        return f"({got} is not _M and {got} == {val})"
    if isinstance(guard, FieldNe):
        got = fx(guard.field)
        val = (f"{env_expr}[{guard.value.name!r}]"
               if isinstance(guard.value, Var) else const(guard.value.value))
        # an absent field cannot equal the forbidden value
        return f"({got} is _M or {got} != {val})"
    if isinstance(guard, FieldCmp):
        got = fx(guard.field)
        val = (f"{env_expr}[{guard.value.name!r}]"
               if isinstance(guard.value, Var) else const(guard.value.value))
        helper = CMP_HELPERS[guard.op]
        return f"({got} is not _M and {helper}({got}, {val}))"
    if isinstance(guard, MismatchAny):
        present = [f"{fx(name)} is not _M" for name, _ in guard.pairs]
        differs = []
        for name, ref in guard.pairs:
            val = (f"{env_expr}[{ref.name!r}]" if isinstance(ref, Var)
                   else const(ref.value))
            differs.append(f"{fx(name)} != {val}")
        return f"({' and '.join(present)} and ({' or '.join(differs)}))"
    if isinstance(guard, Predicate):
        return f"{const(guard.fn)}({fields_expr}, {env_expr})"
    raise TypeError(f"cannot emit guard {guard!r}")  # pragma: no cover


def refinement_sources(pattern: EventPattern, fx, const) -> List[str]:
    """The oob-kind / egress-action refinements as inline expressions,
    mirroring :func:`_compile_refinements` (absent fields never equal an
    enum member, so the ``is not _M`` presence check is equivalent)."""
    out: List[str] = []
    if pattern.oob_kind is not None:
        got = fx("oob.kind")
        out.append(f"({got} is not _M and {got} == {const(pattern.oob_kind)})")
    if pattern.egress_action is not None:
        got = fx("egress.action")
        out.append(
            f"({got} is not _M and {got} == {const(pattern.egress_action)})")
    if pattern.not_egress_action is not None:
        got = fx("egress.action")
        out.append(
            f"({got} is _M or {got} != {const(pattern.not_egress_action)})")
    return out


def match_source(
    pattern: EventPattern, fx, const, env_expr: str, fields_expr: str
) -> str:
    """``guards_match`` as one expression: refinements then guards, no
    kind check (dispatch already guarantees the event class)."""
    terms = refinement_sources(pattern, fx, const)
    terms.extend(
        guard_source(g, fx, const, env_expr, fields_expr)
        for g in pattern.guards
    )
    return " and ".join(terms) if terms else "True"


def bindable_source(pattern: EventPattern, fx) -> str:
    """``bindable`` as one expression (``"True"`` when nothing binds)."""
    if not pattern.binds:
        return "True"
    return " and ".join(f"{fx(b.field)} is not _M" for b in pattern.binds)


def capture_source(pattern: EventPattern, fx) -> str:
    """``capture`` as a dict display (callers guard with bindable first,
    matching the compiled path where capture never sees absent fields)."""
    items = ", ".join(f"{b.var!r}: {fx(b.field)}" for b in pattern.binds)
    return "{" + items + "}"


#: short names for the concrete event classes, for summaries and JSON.
def event_class_label(cls: Type[DataplaneEvent]) -> str:
    return {
        "PacketArrival": "arrival",
        "PacketEgress": "egress",
        "PacketDrop": "drop",
        "OutOfBandEvent": "oob",
    }.get(cls.__name__, cls.__name__)


def dispatch_summary(prop: PropertySpec) -> Dict[str, int]:
    """Watchers per concrete event kind — the dispatch plan's size.

    This is the number of stages the engine touches when one event of
    that kind arrives; kinds not listed cost the property nothing.
    """
    return {
        event_class_label(cls): len(watchers)
        for cls, watchers in sorted(
            dispatch_plan(prop).items(), key=lambda kv: kv[0].__name__
        )
    }


def scan_watchers(
    prop: PropertySpec,
) -> List[Tuple[str, str, str]]:
    """(event kind, stage name, role) for full-population scan watchers.

    These are advance/discharge watchers with an empty index plan: every
    event of that kind examines *every* instance waiting at the stage
    (Table 1's multiple match).  On hot packet kinds that is the
    per-packet price the hot-scan lint (L015) warns about.
    """
    out: List[Tuple[str, str, str]] = []
    seen = set()
    for cls, watchers in sorted(
        dispatch_plan(prop).items(), key=lambda kv: kv[0].__name__
    ):
        for watcher in watchers:
            if watcher.indexed or watcher.role == "unless":
                continue
            key = (cls, watcher.stage_idx)
            if key in seen:
                continue
            seen.add(key)
            stage = prop.stages[watcher.stage_idx]
            out.append((event_class_label(cls), stage.name, watcher.role))
    return out
