"""NetSight-style postcards: full provenance off-switch (Feature 10).

Sec. 3.2: on-switch full provenance "is clearly challenging due to the
extra state required ... A more complete provenance could be selectively
constructed via an approach like NetSight, which sends postcards to a
central monitoring server."

This module implements that design point:

* switches run their monitors at **LIMITED** provenance (no per-event
  retention on-switch), but each instance advancement additionally emits a
  small :class:`Postcard` — (property, instance key, stage, time, packet
  uid, a one-line digest) — to a central :class:`PostcardCollector`;
* on a violation, the collector *selectively reconstructs* the full
  history for exactly that instance from its postcard log, discarding the
  rest after a retention horizon.

The result is the middle point of the provenance spectrum the paper asks
for: on-switch memory stays flat (LIMITED), yet every violation report
carries a full per-stage history — at the price of postcard bandwidth,
which ``benchmarks/bench_postcards.py`` measures against on-switch FULL
retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..switch.events import DataplaneEvent
from ..telemetry import MetricsRegistry, NullRegistry
from .instances import Instance
from .monitor import Monitor
from .provenance import ProvenanceLevel, StageRecord
from .spec import PropertySpec
from .violations import Violation


@dataclass(frozen=True)
class Postcard:
    """One instance advancement, as shipped to the collector.

    Deliberately tiny: NetSight postcards carry a header digest, not the
    packet.  ``digest`` here is the one-line packet description (or
    ``"timer"`` for Feature-7 advancements).
    """

    property_name: str
    instance_key: Tuple
    stage_name: str
    time: float
    packet_uid: Optional[int]
    digest: str

    def wire_size(self) -> int:
        """Approximate on-the-wire size: a fixed header (property id,
        key hash, stage id, timestamp, uid — NetSight's compressed header
        digest) plus the variable one-line digest."""
        return 32 + len(self.digest)


@dataclass(frozen=True)
class ReconstructedViolation:
    """A violation plus the full history rebuilt from postcards."""

    violation: Violation
    history: Tuple[Postcard, ...]

    def describe(self) -> str:
        lines = [self.violation.describe()]
        lines.append("  reconstructed from postcards:")
        lines.extend(
            f"    [{p.time:.6f}] {p.stage_name}: {p.digest}"
            for p in self.history
        )
        return "\n".join(lines)


class PostcardCollector:
    """The central server: receives postcards, reconstructs on violation.

    ``retention`` bounds memory: postcards older than ``retention`` seconds
    (relative to the newest postcard seen) are garbage-collected, since any
    instance they belong to has either violated already or expired.
    """

    def __init__(
        self,
        retention: float = 300.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.retention = retention
        self.registry = registry if registry is not None else NullRegistry()
        self._log: Dict[Tuple[str, Tuple], List[Postcard]] = {}
        self._c_received = self.registry.counter(
            "repro_postcards_received_total",
            help="Postcards shipped to the collector")
        self._c_dropped = self.registry.counter(
            "repro_postcards_dropped_total",
            help="Postcards garbage-collected past the retention horizon")
        self._c_bytes = self.registry.counter(
            "repro_postcards_bytes_total",
            help="Approximate postcard bandwidth consumed", unit="bytes")
        self._g_stored = self.registry.gauge(
            "repro_postcards_stored",
            help="Postcards currently held at the collector")
        self.reconstructed: List[ReconstructedViolation] = []
        self._newest = 0.0

    # Legacy counter names, now views over the registry cells.
    @property
    def postcards_received(self) -> int:
        return int(self._c_received.value)

    @property
    def postcards_dropped(self) -> int:
        return int(self._c_dropped.value)

    # -- ingest ------------------------------------------------------------
    def receive(self, postcard: Postcard) -> None:
        self._c_received.inc()
        self._c_bytes.inc(postcard.wire_size())
        self._newest = max(self._newest, postcard.time)
        key = (postcard.property_name, postcard.instance_key)
        self._log.setdefault(key, []).append(postcard)
        self._g_stored.inc()

    def collect_garbage(self) -> int:
        """Drop postcard chains whose newest entry fell off the horizon."""
        horizon = self._newest - self.retention
        stale = [
            key for key, chain in self._log.items()
            if chain[-1].time < horizon
        ]
        dropped = 0
        for key in stale:
            dropped += len(self._log.pop(key))
        self._c_dropped.inc(dropped)
        self._g_stored.dec(dropped)
        return dropped

    # -- reconstruction -------------------------------------------------------
    def on_violation(self, violation: Violation, instance_key: Tuple) -> None:
        chain = tuple(
            self._log.pop((violation.property_name, instance_key), ())
        )
        self._g_stored.dec(len(chain))
        self.reconstructed.append(
            ReconstructedViolation(violation=violation, history=chain)
        )

    @property
    def stored_postcards(self) -> int:
        return sum(len(chain) for chain in self._log.values())


class PostcardMonitor:
    """A monitor that ships per-advancement postcards to a collector.

    Wraps the core engine at LIMITED provenance (flat on-switch memory)
    and emits one postcard per stage advancement by diffing instance
    provenance after each event — the integration point a real switch
    would implement as a mirror-to-collector action.
    """

    def __init__(
        self,
        collector: PostcardCollector,
        scheduler=None,
        **monitor_kwargs,
    ) -> None:
        monitor_kwargs.setdefault("provenance", ProvenanceLevel.LIMITED)
        self.collector = collector
        self.monitor = Monitor(scheduler=scheduler, **monitor_kwargs)
        self._seen_records: Dict[int, int] = {}  # instance id -> records sent
        self._key_of: Dict[int, Tuple] = {}
        self.monitor.on_violation(self._forward_violation)
        self._last_violation_key: Optional[Tuple] = None

    # -- configuration ---------------------------------------------------------
    def add_property(self, prop: PropertySpec) -> None:
        self.monitor.add_property(prop)

    def attach(self, switch) -> None:
        switch.add_tap(self.observe)

    # -- event path ---------------------------------------------------------------
    def observe(self, event: DataplaneEvent) -> None:
        self.monitor.observe(event)
        self._ship_new_records()

    def advance_to(self, when: float) -> None:
        self.monitor.advance_to(when)
        self._ship_new_records()

    def _ship_new_records(self) -> None:
        for prop_name, store in self.monitor._stores.items():
            for instance in store.all():
                self._ship_instance(prop_name, instance)

    def _ship_instance(self, prop_name: str, instance: Instance) -> None:
        sent = self._seen_records.get(instance.instance_id, 0)
        records = instance.provenance
        if len(records) <= sent:
            return
        self._key_of[instance.instance_id] = instance.key
        for record in records[sent:]:
            self.collector.receive(self._postcard(prop_name, instance, record))
        self._seen_records[instance.instance_id] = len(records)

    def _postcard(
        self, prop_name: str, instance: Instance, record: StageRecord
    ) -> Postcard:
        return Postcard(
            property_name=prop_name,
            instance_key=instance.key,
            stage_name=record.stage_name,
            time=record.time,
            packet_uid=None,
            digest=record.summary or "timer",
        )

    def _forward_violation(self, violation: Violation) -> None:
        # The violated instance is gone from the store by now; its key is
        # recoverable from the violation's bindings via the property spec.
        prop = self.monitor._props[violation.property_name]
        try:
            key = tuple(violation.bindings[k] for k in prop.key_vars)
        except KeyError:
            key = ()
        # Ship the final stage's record too (it never appears in the store).
        final_stage = prop.stages[-1].name
        self.collector.receive(Postcard(
            property_name=violation.property_name,
            instance_key=key,
            stage_name=final_stage,
            time=violation.time,
            packet_uid=None,
            digest=(violation.trigger.packet.describe()
                    if violation.trigger is not None
                    and hasattr(violation.trigger, "packet")
                    else "timer"),
        ))
        self.collector.on_violation(violation, key)

    # -- results -------------------------------------------------------------------
    @property
    def violations(self) -> List[Violation]:
        return self.monitor.violations

    @property
    def reconstructed(self) -> List[ReconstructedViolation]:
        return self.collector.reconstructed
