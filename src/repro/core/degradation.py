"""Graceful monitor degradation: bounded state, shed work, honest errors.

The paper's static-Varanus column trades match generality for *bounded*
instance tables; Sec. 3.3 worries that split-mode updates lag behind line
rate.  This module makes both pressures explicit monitor policy instead of
silent failure:

* :class:`DegradationPolicy` bounds each property's instance store
  (``max_instances`` + an eviction policy) and the split-mode pending
  queue (``max_pending_ops`` + retry/backoff before shedding);
* :class:`OverflowLedger` records every shed instance and op with a
  *primary* classification — the likeliest error direction — plus the
  conservative both-sided impact set, so a degraded run can report its
  violation count as ``degraded - potential_false <= true <= degraded +
  potential_missed`` instead of a confidently wrong number.

The interval is an *estimate*, not a proof: one lost state transition can
cascade (a never-killed instance shadows future creations at its key),
so each record counts toward both bounds.  The per-kind primary
classification is what you read to diagnose *which* failure mode a
profile produces; ``docs/ROBUSTNESS.md`` walks through the semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Eviction policies for bounded instance stores.
EVICT_REJECT = "reject-new"    # static tables: a full store refuses creations
EVICT_OLDEST = "evict-oldest"  # FIFO: shed the longest-lived instance
EVICT_LRU = "evict-lru"        # shed the least-recently-advanced instance

EVICTION_POLICIES = (EVICT_REJECT, EVICT_OLDEST, EVICT_LRU)

#: Impact classifications for shed work.
IMPACT_MISSED = "missed-detection"   # a real violation may go unreported
IMPACT_FALSE = "false-positive"      # a reported violation may be spurious


@dataclass(frozen=True)
class DegradationPolicy:
    """Bounds and shed behaviour for one monitor under overload."""

    #: per-property instance-store capacity (None = unbounded)
    max_instances: Optional[int] = None
    #: what a full store does with the next creation
    eviction: str = EVICT_REJECT
    #: split-mode pending-queue bound (None = unbounded)
    max_pending_ops: Optional[int] = None
    #: base backoff before re-attempting a backpressured op (doubles
    #: per attempt)
    retry_backoff: float = 1e-3
    #: re-attempts before an op is shed outright
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.max_instances is not None and self.max_instances < 1:
            raise ValueError(f"max_instances={self.max_instances!r} must be >= 1")
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r} "
                f"(expected one of {EVICTION_POLICIES})")
        if self.max_pending_ops is not None and self.max_pending_ops < 1:
            raise ValueError(
                f"max_pending_ops={self.max_pending_ops!r} must be >= 1")
        if not 0.0 <= self.retry_backoff < float("inf"):
            raise ValueError(
                f"retry_backoff={self.retry_backoff!r} must be finite, >= 0")
        if self.max_retries < 0:
            raise ValueError(f"max_retries={self.max_retries!r} must be >= 0")


#: Primary impact per (op kind, disposition): the direction the error
#: *usually* takes.  A lost create/advance usually hides a violation; a
#: lost kill usually lets a discharged instance complete anyway.
_PRIMARY = {
    "create": IMPACT_MISSED,
    "advance": IMPACT_MISSED,
    "refresh": IMPACT_MISSED,
    "kill": IMPACT_FALSE,
}


def classify_op(kind: str, disposition: str) -> Tuple[str, ...]:
    """Impact set for a shed or delayed op, primary impact first.

    Every record carries both impacts — a diverged instance population
    can flip the error either way (e.g. a dropped create suppresses a
    refresh, so a *later* re-creation completes where the clean run's
    instance had already expired) — but the primary (first) element
    encodes the dominant direction for the ledger breakdown.
    """
    primary = _PRIMARY.get(kind, IMPACT_MISSED)
    other = IMPACT_FALSE if primary == IMPACT_MISSED else IMPACT_MISSED
    return (primary, other)


#: default ceiling :func:`suggested_policy` clamps instance caps to —
#: roughly a hardware match table's worth of per-property state
DEFAULT_INSTANCE_CAP = 4096


def suggested_policy(
    instance_bound: int,
    attacker_keyed: bool = False,
    cap: int = DEFAULT_INSTANCE_CAP,
) -> DegradationPolicy:
    """A policy sized for a property's worst-case instance bound.

    ``instance_bound`` is the taint pass's static worst case (key
    cardinality × stage fan-out).  When it fits under ``cap`` the bound
    itself is the limit — the property genuinely cannot need more.  An
    attacker-keyed property gets LRU eviction rather than reject-new:
    under a flood the recently-active instances are the ones tracking
    real traffic, while reject-new would let the first wave of bogus
    keys permanently lock legitimate ones out.
    """
    if instance_bound < 1:
        raise ValueError(f"instance_bound={instance_bound!r} must be >= 1")
    return DegradationPolicy(
        max_instances=min(instance_bound, cap),
        eviction=EVICT_LRU if attacker_keyed else EVICT_REJECT,
    )


@dataclass(frozen=True)
class ShedRecord:
    """One unit of work the degraded monitor did not perform faithfully."""

    #: "instance-rejected" | "instance-evicted" | "op-dropped" |
    #: "op-delayed" | "op-retried" | "op-shed"
    kind: str
    prop: str
    detail: str
    time: float
    impacts: Tuple[str, ...]

    @property
    def primary(self) -> str:
        return self.impacts[0]


class OverflowLedger:
    """Append-only record of everything shed, with impact accounting."""

    def __init__(self) -> None:
        self.records: List[ShedRecord] = []

    def record(
        self,
        kind: str,
        prop: str,
        detail: str,
        time: float,
        impacts: Tuple[str, ...],
    ) -> None:
        self.records.append(ShedRecord(kind, prop, detail, time, impacts))

    def __len__(self) -> int:
        return len(self.records)

    # -- impact accounting ------------------------------------------------
    def potential_missed(self, prop: Optional[str] = None) -> int:
        """Records that could each hide one (or more) real violations."""
        return sum(
            1 for r in self.records
            if IMPACT_MISSED in r.impacts and (prop is None or r.prop == prop)
        )

    def potential_false(self, prop: Optional[str] = None) -> int:
        """Records that could each make one reported violation spurious."""
        return sum(
            1 for r in self.records
            if IMPACT_FALSE in r.impacts and (prop is None or r.prop == prop)
        )

    def interval(
        self, observed: int, prop: Optional[str] = None
    ) -> Tuple[int, int]:
        """The uncertainty interval around an observed violation count."""
        lo = observed - self.potential_false(prop)
        hi = observed + self.potential_missed(prop)
        return (max(0, lo), hi)

    # -- breakdowns -------------------------------------------------------
    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return dict(sorted(out.items()))

    def by_primary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.primary] = out.get(r.primary, 0) + 1
        return dict(sorted(out.items()))

    def properties(self) -> Tuple[str, ...]:
        return tuple(sorted({r.prop for r in self.records}))

    def summary(self) -> Dict[str, object]:
        """A JSON-able digest for degradation reports."""
        return {
            "records": len(self.records),
            "by_kind": self.by_kind(),
            "by_primary": self.by_primary(),
            "per_property": {
                prop: {
                    "potential_missed": self.potential_missed(prop),
                    "potential_false": self.potential_false(prop),
                }
                for prop in self.properties()
            },
        }
