"""Monitor instances and instance stores (Feature 8).

An *instance* is a partially completed attempt to witness a violation: the
values bound so far, plus the next observation stage to match (the paper's
definition in Sec. 2.4).  When an event arrives, the monitor must decide
which instances it advances — the instance-identification problem whose
variants (exact / symmetric / wandering / multiple match) Table 1
catalogues.

Two store implementations share one interface:

* :class:`IndexedInstanceStore` — builds, per stage, an *index plan* from
  the stage's variable-referencing equality guards (plus the packet-uid
  linkage of ``same_packet_as``), and hashes waiting instances by their
  bound values for those variables.  An event yields candidates by direct
  lookup.  Stages with no indexable guards (e.g. an out-of-band link-down,
  which must advance *every* instance — multiple match) fall back to
  scanning that stage's population.

* :class:`LinearInstanceStore` — always scans.  It exists as the ablation
  baseline for ``benchmarks/bench_instance_index.py``, quantifying why
  instance identification is a switch-design axis and not a lookup detail.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .degradation import EVICT_LRU, EVICT_OLDEST, EVICT_REJECT
from .refs import EventPattern
from .spec import PropertySpec, Stage

_instance_ids = itertools.count(1)

#: env key under which each packet stage records its packet uid, enabling
#: Feature 5 (packet identity) linkage via ``same_packet_as``.
def uid_var(stage_name: str) -> str:
    return f"__uid_{stage_name}"


class Instance:
    """One partially-completed violation witness."""

    __slots__ = (
        "prop",
        "key",
        "env",
        "stage",
        "deadline",
        "deadline_kind",
        "provenance",
        "created_at",
        "advanced_at",
        "alive",
        "instance_id",
        "stage_bucket",
        "index_bucket",
    )

    def __init__(
        self,
        prop: PropertySpec,
        key: Tuple,
        env: Dict[str, object],
        created_at: float,
    ) -> None:
        self.prop = prop
        self.key = key
        self.env = env
        self.stage = 1  # index of the next stage to match
        self.deadline: Optional[float] = None
        self.deadline_kind: str = ""  # "expire" (F3) or "advance" (F7)
        self.provenance: List[object] = []
        self.created_at = created_at
        self.advanced_at = created_at
        self.alive = True
        self.instance_id = next(_instance_ids)
        # Store back-pointers: the per-stage population dict and (for the
        # indexed store) the index bucket currently holding this instance.
        # They make removal O(1) instead of a walk over stages × buckets.
        self.stage_bucket: Optional[Dict[int, "Instance"]] = None
        self.index_bucket: Optional[Dict[int, "Instance"]] = None

    @property
    def complete(self) -> bool:
        return self.stage >= self.prop.num_stages

    def current_stage(self) -> Optional[Stage]:
        if self.complete:
            return None
        return self.prop.stages[self.stage]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instance({self.prop.name}, key={self.key}, stage={self.stage}, "
            f"alive={self.alive})"
        )


def stage_index_plan(stage: Stage) -> Tuple[Tuple[str, str], ...]:
    """The (event_field, env_var) pairs an index can hash this stage on."""
    plan = list(stage.pattern.env_guards())
    if stage.pattern.same_packet_as is not None:
        plan.append(("uid", uid_var(stage.pattern.same_packet_as)))
    return tuple(plan)


#: shared empty dict backing ``at_stage`` misses (never written to).
_EMPTY_STAGE: Dict[int, Instance] = {}


class InstanceStore:
    """Interface: tracks live instances of ONE property.

    Beyond the key map, the base class maintains one dict per stage
    holding exactly the live instances waiting there, so ``at_stage`` —
    the scan behind every ``unless`` pattern and linear-store candidate
    lookup — is O(stage population) and allocates nothing per event.
    """

    def __init__(self, prop: PropertySpec, capacity: Optional[int] = None) -> None:
        self.prop = prop
        #: bounded-store capacity (None = unbounded); enforced by the
        #: monitor's degradation layer, not by ``add`` itself, so the
        #: eviction decision (and its ledger entry) stays in one place.
        self.capacity = capacity
        self._by_key: Dict[Tuple, Instance] = {}
        self._live = 0
        #: stage -> {instance_id: instance}.  The per-stage dicts are
        #: pre-created (and never replaced — ``setdefault`` below reuses
        #: them), so the codegen backend can bind them directly into its
        #: generated evaluators as stable references.
        self._stage_pop: Dict[int, Dict[int, Instance]] = {
            i: {} for i in range(1, prop.num_stages + 1)
        }

    # -- shared key-based access ------------------------------------------
    def by_key(self, key: Tuple) -> Optional[Instance]:
        return self._by_key.get(key)

    @property
    def live_count(self) -> int:
        """Live instances, maintained incrementally: the telemetry gauges
        (and ``Monitor.live_instances``) read this O(1) counter instead of
        scanning the population on every event."""
        return self._live

    def add(self, instance: Instance) -> None:
        existing = self._by_key.get(instance.key)
        if existing is not None and existing.alive:
            raise ValueError(f"duplicate live instance for key {instance.key!r}")
        self._by_key[instance.key] = instance
        self._live += 1
        bucket = self._stage_pop.setdefault(instance.stage, {})
        bucket[instance.instance_id] = instance
        instance.stage_bucket = bucket
        self._index_add(instance)

    def remove(self, instance: Instance) -> None:
        if instance.alive:
            self._live -= 1
        instance.alive = False
        if self._by_key.get(instance.key) is instance:
            del self._by_key[instance.key]
        bucket = instance.stage_bucket
        if bucket is not None:
            bucket.pop(instance.instance_id, None)
            instance.stage_bucket = None
        self._index_remove(instance)

    def reindex(self, instance: Instance, old_stage: int) -> None:
        """Called after an instance advances stages (or rebinds in place)."""
        bucket = instance.stage_bucket
        if bucket is not None:
            bucket.pop(instance.instance_id, None)
        bucket = self._stage_pop.setdefault(instance.stage, {})
        bucket[instance.instance_id] = instance
        instance.stage_bucket = bucket
        self._index_move(instance, old_stage)

    def candidates(
        self, stage_idx: int, fields: Mapping[str, object]
    ) -> Iterable[Instance]:
        raise NotImplementedError

    def at_stage(self, stage_idx: int) -> Iterable[Instance]:
        """Live instances waiting at a stage — a view, no allocation."""
        return self._stage_pop.get(stage_idx, _EMPTY_STAGE).values()

    # -- bounded-store support (static-Varanus style tables) ---------------
    def at_capacity(self) -> bool:
        return self.capacity is not None and self._live >= self.capacity

    def choose_victim(self, policy: str) -> Optional[Instance]:
        """The live instance an eviction policy would shed, or None.

        ``reject-new`` never evicts (the *new* creation is refused);
        ``evict-oldest`` sheds the earliest-created live instance;
        ``evict-lru`` the least-recently-advanced/refreshed one.  Ties
        break on instance id, keeping eviction order deterministic.
        """
        if policy == EVICT_REJECT:
            return None
        if policy not in (EVICT_OLDEST, EVICT_LRU):
            raise ValueError(f"unknown eviction policy {policy!r}")
        by_age = policy == EVICT_OLDEST
        best: Optional[Instance] = None
        best_rank: Optional[Tuple[float, int]] = None
        for instance in self._by_key.values():
            if not instance.alive:
                continue
            stamp = instance.created_at if by_age else instance.advanced_at
            rank = (stamp, instance.instance_id)
            if best_rank is None or rank < best_rank:
                best, best_rank = instance, rank
        return best

    def all(self) -> Iterable[Instance]:
        return [i for i in self._by_key.values() if i.alive]

    def __len__(self) -> int:
        return len(self._by_key)

    # -- hooks --------------------------------------------------------------
    def _index_add(self, instance: Instance) -> None:
        pass

    def _index_remove(self, instance: Instance) -> None:
        pass

    def _index_move(self, instance: Instance, old_stage: int) -> None:
        pass


class LinearInstanceStore(InstanceStore):
    """Ablation baseline: candidate lookup is a full scan of the stage."""

    def candidates(
        self, stage_idx: int, fields: Mapping[str, object]
    ) -> Iterable[Instance]:
        return self.at_stage(stage_idx)


class IndexedInstanceStore(InstanceStore):
    """Hash-indexed store keyed on each stage's index plan."""

    def __init__(self, prop: PropertySpec, capacity: Optional[int] = None) -> None:
        super().__init__(prop, capacity=capacity)
        self._plans: Dict[int, Tuple[Tuple[str, str], ...]] = {
            i: stage_index_plan(stage)
            for i, stage in enumerate(prop.stages)
            if i >= 1
        }
        # stage -> index_key (or None for unindexable) -> instances, as an
        # insertion-ordered dict keyed by instance id.  NOT a set: default
        # object hashing would make candidate iteration order (and thus
        # same-timestamp violation order) depend on memory addresses,
        # breaking run-to-run determinism.
        self._buckets: Dict[int, Dict[Optional[Tuple], Dict[int, Instance]]] = {
            i: {} for i in self._plans
        }

    def _instance_index_key(self, instance: Instance) -> Optional[Tuple]:
        plan = self._plans.get(instance.stage, ())
        if not plan:
            return None
        try:
            return tuple(instance.env[var] for _, var in plan)
        except KeyError:
            # A plan variable is not bound (possible only for patterns whose
            # binding stage was skipped — spec validation prevents it, but a
            # scan bucket keeps the store safe regardless).
            return None

    def _index_add(self, instance: Instance) -> None:
        if instance.complete or instance.stage not in self._buckets:
            return
        key = self._instance_index_key(instance)
        bucket = self._buckets[instance.stage].setdefault(key, {})
        bucket[instance.instance_id] = instance
        instance.index_bucket = bucket

    def _index_remove(self, instance: Instance) -> None:
        # The back-pointer makes this O(1); the historical implementation
        # walked every bucket of every stage per removal.
        bucket = instance.index_bucket
        if bucket is not None:
            bucket.pop(instance.instance_id, None)
            instance.index_bucket = None

    def _index_move(self, instance: Instance, old_stage: int) -> None:
        self._index_remove(instance)
        self._index_add(instance)

    def candidates(
        self, stage_idx: int, fields: Mapping[str, object]
    ) -> Iterable[Instance]:
        """Candidates for a stage — dict views where one bucket suffices.

        Buckets hold only live instances (removal always goes through the
        back-pointer), so no alive filter — and usually no copy — is
        needed; a list is built only when both an indexed hit and the
        scan bucket contribute.
        """
        buckets = self._buckets.get(stage_idx)
        if not buckets:
            return ()
        plan = self._plans[stage_idx]
        hit = None
        if plan:
            try:
                key = tuple(fields[field] for field, _ in plan)
            except KeyError:
                key = None  # event lacks an indexed field: equality can't hold
            if key is not None:
                hit = buckets.get(key)
        # The scan bucket holds instances whose stage is unindexable; for an
        # empty plan this is the whole stage population (multiple match).
        scan = buckets.get(None)
        if scan is None:
            return hit.values() if hit is not None else ()
        if hit is None:
            return scan.values()
        out: List[Instance] = list(hit.values())
        out.extend(scan.values())
        return out


def make_store(
    prop: PropertySpec,
    strategy: str = "indexed",
    capacity: Optional[int] = None,
) -> InstanceStore:
    """Factory: ``"indexed"`` (default) or ``"linear"`` (ablation)."""
    if strategy == "indexed":
        return IndexedInstanceStore(prop, capacity=capacity)
    if strategy == "linear":
        return LinearInstanceStore(prop, capacity=capacity)
    raise ValueError(f"unknown instance store strategy {strategy!r}")
