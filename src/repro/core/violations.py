"""Violation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..switch.events import DataplaneEvent
from .provenance import StageRecord


@dataclass(frozen=True)
class Violation:
    """A completed witness: the property failed.

    ``bindings`` carries the instance's environment (minus internal uid
    variables) — the paper's "limited provenance" that comes for free;
    ``history`` is whatever the configured provenance level preserved;
    ``trigger`` is the final event (None when a timeout action fired the
    final stage — there *is* no packet in that case).
    """

    property_name: str
    time: float
    bindings: Dict[str, object]
    message: str = ""
    trigger: Optional[DataplaneEvent] = None
    history: Tuple[StageRecord, ...] = ()

    def describe(self) -> str:
        binds = ", ".join(f"{k}={v}" for k, v in sorted(self.bindings.items()))
        head = f"VIOLATION {self.property_name} at t={self.time:.6f} [{binds}]"
        if self.message:
            head += f": {self.message}"
        if self.history:
            lines = "\n  ".join(r.describe() for r in self.history)
            head += f"\n  {lines}"
        return head
