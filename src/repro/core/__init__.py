"""The monitoring core: property IR, monitor engine, static analysis.

This package is the paper's primary contribution made executable: property
specifications (sequences of observations with timeouts, obligations,
negative observations, identity links), the monitor engine implementing all
ten semantic features of Sec. 2, and the static analyzer that regenerates
Table 1 from the specifications alone.
"""

from .compile import (
    CompiledPattern,
    Watcher,
    compile_pattern,
    dispatch_plan,
    dispatch_summary,
    scan_watchers,
)
from .analysis import (
    analyze,
    classify_match_kind,
    field_family,
    field_layer,
    required_layer,
    requires_drop_visibility,
    requires_multiple_match,
    requires_negative_match,
    requires_obligation,
    requires_out_of_band,
    requires_timeout_actions,
    requires_timeouts,
)
from .degradation import (
    EVICT_LRU,
    EVICT_OLDEST,
    EVICT_REJECT,
    EVICTION_POLICIES,
    IMPACT_FALSE,
    IMPACT_MISSED,
    DegradationPolicy,
    OverflowLedger,
    ShedRecord,
    classify_op,
)
from .features import Feature, FeatureRequirements, MatchKind
from .instances import (
    IndexedInstanceStore,
    Instance,
    InstanceStore,
    LinearInstanceStore,
    make_store,
    stage_index_plan,
    uid_var,
)
from .monitor import Monitor, MonitorStats
from .provenance import ProvenanceLevel, StageRecord
from .refs import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    FieldNe,
    MismatchAny,
    Predicate,
    Var,
    event_fields,
    kind_matches,
)
from .spec import Absent, Observe, PropertySpec, SpecError
from .violations import Violation

__all__ = [
    "CompiledPattern",
    "Watcher",
    "compile_pattern",
    "dispatch_plan",
    "dispatch_summary",
    "scan_watchers",
    "analyze",
    "classify_match_kind",
    "field_family",
    "field_layer",
    "required_layer",
    "requires_drop_visibility",
    "requires_multiple_match",
    "requires_negative_match",
    "requires_obligation",
    "requires_out_of_band",
    "requires_timeout_actions",
    "requires_timeouts",
    "EVICT_LRU",
    "EVICT_OLDEST",
    "EVICT_REJECT",
    "EVICTION_POLICIES",
    "IMPACT_FALSE",
    "IMPACT_MISSED",
    "DegradationPolicy",
    "OverflowLedger",
    "ShedRecord",
    "classify_op",
    "Feature",
    "FeatureRequirements",
    "MatchKind",
    "IndexedInstanceStore",
    "Instance",
    "InstanceStore",
    "LinearInstanceStore",
    "make_store",
    "stage_index_plan",
    "uid_var",
    "Monitor",
    "MonitorStats",
    "ProvenanceLevel",
    "StageRecord",
    "Bind",
    "Const",
    "EventKind",
    "EventPattern",
    "FieldEq",
    "FieldNe",
    "MismatchAny",
    "Predicate",
    "Var",
    "event_fields",
    "kind_matches",
    "Absent",
    "Observe",
    "PropertySpec",
    "SpecError",
    "Violation",
]
