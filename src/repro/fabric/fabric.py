"""The sharded monitor fabric: N shards behind one Monitor-shaped facade.

:class:`ShardedMonitor` is drop-in for the call surface the rest of the
system uses — ``observe``/``observe_batch``, ``advance_to``/``flush``,
``start``/``drain``/``stop``, ``violations``, ``stats``, ``ledger``,
``live_instances``/``pending_op_count`` — so ``repro replay``,
``repro serve``, and the stats plane are shard-transparent.

Two execution modes share all routing and merging logic:

* ``"inprocess"`` — N shard monitors in this process, called
  synchronously.  No IPC, no parallelism: the ablation twin that
  isolates *partitioning* effects from *transport* effects, and the
  correctness oracle the differential suite compares against.
* ``"mp"`` — N forked worker processes fed serialized event frames
  (``fabric.mp``).  The parent never blocks on the data path; state
  flows back as cursor-based snapshot deltas on explicit ``sync()``.

Merging rules (the parts worth being careful about):

* ``stats.events`` is the router's count — each offered event once —
  not the sum of shard counters, which double-counts fan-out.
* All other counters sum across shards.  With the default indexed
  stores this reproduces the single-monitor counts exactly: every
  candidate probe touches instances sharing the event's full key, all
  of which live on the shard the event routed to.
* Peak gauges sum per-shard peaks — an upper bound on the true global
  peak (shards may peak at different times), documented as such.
* Violations merge into one list ordered by (time, property, bindings);
  shed records append to one fabric-owned :class:`OverflowLedger`, so
  the uncertainty interval spans all shards plus anything the serve
  ingest queue sheds into the same ledger.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.degradation import OverflowLedger
from ..core.monitor import Monitor, MonitorStats
from ..core.spec import PropertySpec
from ..core.violations import Violation
from ..switch.events import DataplaneEvent
from ..telemetry import NULL_TRACER, MetricsRegistry, NullRegistry, Tracer
from .mp import MpShard
from .routing import Router, build_routes
from .shard import SNAPSHOT_COUNTERS, SNAPSHOT_GAUGES, ShardSnapshot, \
    build_shard_monitor, take_snapshot
from .supervise import Supervisor, SupervisorPolicy

FABRIC_MODES = ("inprocess", "mp")


def _violation_order(violation: Violation) -> Tuple:
    return (
        violation.time,
        violation.property_name,
        tuple(sorted((k, str(v)) for k, v in violation.bindings.items())),
    )


class FabricStats:
    """A :class:`MonitorStats`-shaped view over the merged shard state.

    ``events`` reads the router; counters sum across shards; peak
    gauges sum per-shard peaks (an upper bound — shards peak
    independently).  Reads trigger a fabric sync, which is a no-op
    unless events or time advanced since the last one.
    """

    def __init__(self, fabric: "ShardedMonitor") -> None:
        self._fabric = fabric

    def __getattr__(self, name: str) -> int:
        fabric = self._fabric
        if name == "events":
            return int(fabric.router.events_total)
        if name in MonitorStats._COUNTERS:
            fabric.sync()
            return int(sum(
                snap.counters[name] + base[name]
                for snap, base in zip(fabric._snapshots,
                                      fabric._counter_base)))
        if name in MonitorStats._GAUGES:
            fabric.sync()
            return int(sum(
                max(snap.peaks[name], base[name])
                for snap, base in zip(fabric._snapshots, fabric._peak_base)))
        raise AttributeError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = {name: getattr(self, name)
                  for name in (*MonitorStats._COUNTERS,
                               *MonitorStats._GAUGES)}
        inner = ", ".join(f"{k}={v}" for k, v in fields.items())
        return f"FabricStats({inner})"


class ShardedMonitor:
    """Key-partitioned monitor execution behind the Monitor call surface."""

    def __init__(
        self,
        props: Sequence[PropertySpec],
        num_shards: int = 2,
        mode: str = "inprocess",
        registry: Optional[MetricsRegistry] = None,
        max_layer: int = 7,
        monitor_kwargs: Optional[Dict[str, object]] = None,
        monitor_kwargs_fn: Optional[
            Callable[[int], Dict[str, object]]] = None,
        supervision: Optional[SupervisorPolicy] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if mode not in FABRIC_MODES:
            raise ValueError(
                f"unknown fabric mode {mode!r} "
                f"(expected one of {FABRIC_MODES})")
        self.num_shards = num_shards
        self.mode = mode
        self.max_layer = max_layer
        self.registry = registry if registry is not None else NullRegistry()
        self._props = list(props)
        self.routes = build_routes(self._props, num_shards)
        self.router = Router(
            self.routes, num_shards, max_layer=max_layer,
            registry=self.registry)
        self.ledger = OverflowLedger()
        self.stats = FabricStats(self)
        self.started_at: Optional[float] = None
        self._now = 0.0
        self._tracer: Tracer = NULL_TRACER
        self._violations: List[Violation] = []
        self._sorted_violations: Optional[List[Violation]] = None
        self._snapshots: List[ShardSnapshot] = [
            ShardSnapshot(shard=i, now=0.0, live_instances=0, pending_ops=0,
                          counters={n: 0.0 for n in SNAPSHOT_COUNTERS},
                          peaks={n: 0.0 for n in SNAPSHOT_GAUGES})
            for i in range(num_shards)
        ]
        self._dirty = False
        self._stopped = False
        self._inflight = [0] * num_shards
        # Folded-in totals from dead workers: a restarted shard's
        # counters restart near zero, so the supervisor's down callback
        # banks the last merged totals here.  Replayed journal events
        # are counted again by the replacement, making post-crash
        # counters an upper bound (documented in ROBUSTNESS.md).
        self._counter_base: List[Dict[str, float]] = [
            {n: 0.0 for n in SNAPSHOT_COUNTERS} for _ in range(num_shards)]
        self._peak_base: List[Dict[str, float]] = [
            {n: 0.0 for n in SNAPSHOT_GAUGES} for _ in range(num_shards)]
        self._g_queue = [
            self.registry.gauge(
                "repro_fabric_shard_queue_depth",
                help="Events forwarded to one shard and not yet confirmed "
                     "by a snapshot sync (always 0 for in-process shards)",
                labels={"shard": str(i)})
            for i in range(num_shards)
        ]
        self._mirrored: Dict[str, float] = {}

        def shard_kwargs(idx: int) -> Dict[str, object]:
            if monitor_kwargs_fn is not None:
                return dict(monitor_kwargs_fn(idx))
            return dict(monitor_kwargs or {})

        self.supervisor: Optional[Supervisor] = None
        if mode == "inprocess":
            self._shards: List[Monitor] = [
                build_shard_monitor(self._props, i, num_shards, self.routes,
                                    shard_kwargs(i))
                for i in range(num_shards)
            ]
            self._cursors = [(0, 0)] * num_shards
        else:
            self._shards = []
            self._cursors = []
            policy = supervision if supervision is not None \
                else SupervisorPolicy()

            def spawn(idx: int) -> MpShard:
                return MpShard(
                    self._props, idx, num_shards, self.routes,
                    shard_kwargs(idx), max_layer,
                    send_timeout=policy.send_timeout)

            self.supervisor = Supervisor(
                spawn, num_shards, self.ledger, policy=policy,
                registry=self.registry, now_fn=lambda: self._now,
                merge_cb=self._merge, down_cb=self._on_shard_down)

    # -- event intake ------------------------------------------------------
    def observe(self, event: DataplaneEvent) -> None:
        self.observe_batch((event,))

    def observe_batch(self, events: Sequence[DataplaneEvent]) -> None:
        if not events:
            return
        batches = self.router.split(events)
        last = events[-1].time
        if last > self._now:
            self._now = last
        if self.mode == "inprocess":
            for idx, batch in enumerate(batches):
                if batch:
                    self._shards[idx].observe_batch(batch)
        else:
            for idx, batch in enumerate(batches):
                if batch:
                    self.supervisor.send_batch(idx, batch)
                    self._inflight[idx] += len(batch)
                    self._g_queue[idx].set(float(self._inflight[idx]))
            self.supervisor.tick()
        self._dirty = True

    def advance_to(self, when: float) -> None:
        if when > self._now:
            self._now = when
        if self.mode == "inprocess":
            for shard in self._shards:
                shard.advance_to(when)
        else:
            self.supervisor.advance_to(when)
        self._dirty = True

    def flush(self, until: float) -> None:
        self.advance_to(until)

    def start(self, now: float = 0.0) -> None:
        self.started_at = now
        self.advance_to(now)

    def drain(self, until: Optional[float] = None) -> int:
        if until is not None:
            self.advance_to(until)
        elif self.mode == "inprocess":
            for shard in self._shards:
                shard.drain()
            self._dirty = True
        else:
            self.supervisor.drain()
            self._dirty = True
        self.sync()
        return self.pending_op_count()

    # -- merged state ------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        # Shards keep their null tracers: spans are a single-process
        # debug instrument, and serve's per-event root spans are opened
        # by the daemon around fabric calls, not inside the engine.
        self._tracer = tracer

    def sync(self) -> None:
        """Refresh merged state from every shard (no-op when clean)."""
        if not self._dirty:
            return
        self._dirty = False
        if self.mode == "inprocess":
            for idx, shard in enumerate(self._shards):
                viol_cursor, shed_cursor = self._cursors[idx]
                snapshot, viol_cursor, shed_cursor = take_snapshot(
                    shard, idx, viol_cursor, shed_cursor)
                self._cursors[idx] = (viol_cursor, shed_cursor)
                self._merge(snapshot)
        else:
            # The supervisor delivers each shard's snapshot through
            # self._merge (after trimming replay duplicates); shards
            # that are down this round simply skip a beat and their
            # state arrives with a later sync.
            self.supervisor.sync_snapshots()
        self._mirror_monitor_metrics()

    def _merge(self, snapshot: ShardSnapshot) -> None:
        idx = snapshot.shard
        self._snapshots[idx] = snapshot
        if snapshot.violations:
            self._violations.extend(snapshot.violations)
            self._sorted_violations = None
        self.ledger.records.extend(snapshot.sheds)
        self._inflight[idx] = 0
        self._g_queue[idx].set(0.0)

    def _on_shard_down(self, idx: int) -> None:
        """Supervisor callback: bank a dead worker's merged totals.

        The replacement's cumulative counters restart near zero, so the
        last merged snapshot's totals fold into a per-shard base before
        the stored snapshot is zeroed out; the merged view never goes
        backwards.
        """
        snap = self._snapshots[idx]
        base = self._counter_base[idx]
        for name in SNAPSHOT_COUNTERS:
            base[name] += snap.counters[name]
            snap.counters[name] = 0.0
        peaks = self._peak_base[idx]
        for name in SNAPSHOT_GAUGES:
            peaks[name] = max(peaks[name], snap.peaks[name])
            snap.peaks[name] = 0.0
        snap.live_instances = 0
        snap.pending_ops = 0

    def _mirror_monitor_metrics(self) -> None:
        """Reflect shard totals into the fabric's registry.

        Shard monitors run NullRegistries (their counters still count;
        they export nothing), so the fabric republishes the merged
        ``repro_monitor_*`` families — a scrape of a sharded daemon
        shows the same names a single-monitor daemon does.
        """
        if not self.registry.enabled:
            return
        for attr, name in MonitorStats._COUNTERS.items():
            if attr == "events":
                total = float(self.router.events_total)
            else:
                total = float(sum(
                    snap.counters[attr] + base[attr]
                    for snap, base in zip(self._snapshots,
                                          self._counter_base)))
            delta = total - self._mirrored.get(name, 0.0)
            # Only positive deltas: mid-recovery a replacement shard
            # briefly reports less than its predecessor did, and a
            # Prometheus counter must never decrease.
            if delta > 0:
                self.registry.counter(name).inc(delta)
                self._mirrored[name] = total
        self.registry.gauge("repro_monitor_live_instances").set(
            float(sum(s.live_instances for s in self._snapshots)))
        self.registry.gauge("repro_monitor_pending_ops").set(
            float(sum(s.pending_ops for s in self._snapshots)))

    @property
    def violations(self) -> List[Violation]:
        self.sync()
        if self._sorted_violations is None:
            self._sorted_violations = sorted(
                self._violations, key=_violation_order)
        return self._sorted_violations

    def live_instances(self) -> int:
        self.sync()
        return sum(s.live_instances for s in self._snapshots)

    def pending_op_count(self) -> int:
        self.sync()
        return sum(s.pending_ops for s in self._snapshots)

    @property
    def shard_monitors(self) -> List[Monitor]:
        """In-process shard monitors (tests, invariant checks); [] in mp."""
        return list(self._shards)

    # -- supervision surface ----------------------------------------------
    def tick(self) -> None:
        """Periodic supervision duty (heartbeats, due restarts).

        The data path already ticks per batch; poll loops (the serve
        daemon) call this so an idle fabric still notices dead workers.
        """
        if self.supervisor is not None:
            self.supervisor.tick()

    def recovering_shards(self) -> List[int]:
        """Shards currently down and rebuilding (readiness degrades)."""
        if self.supervisor is not None:
            return self.supervisor.recovering()
        return []

    def shard_liveness(self) -> List[Dict[str, object]]:
        """Per-shard health rows for /healthz, /stats, and reports."""
        if self.supervisor is not None:
            return self.supervisor.liveness()
        return [
            {"shard": idx, "alive": True, "recovering": False,
             "failed": False, "pid": None, "restarts": 0,
             "journal_batches": 0, "journal_events": 0,
             "quarantined_batches": 0, "down_reason": ""}
            for idx in range(self.num_shards)
        ]

    # -- lifecycle ---------------------------------------------------------
    def stop(self, now: Optional[float] = None) -> Dict[str, object]:
        """Drain every shard and return a Monitor-compatible summary."""
        if not self._stopped:
            self._stopped = True
            if now is not None and now > self._now:
                self._now = now
            if self.mode == "inprocess":
                for shard in self._shards:
                    remaining = shard.drain(until=now)
                    if remaining and now is None:  # pragma: no cover
                        shard.drain()
            else:
                horizon = self._now if now is None else max(now, self._now)
                self.supervisor.advance_to(horizon)
                if now is None:
                    self.supervisor.drain()
                # quiesce() forces down shards through recovery first,
                # then bounded-quits each worker; snapshots arrive via
                # self._merge, and a hung worker is killed + ledgered
                # instead of deadlocking this call.
                self.supervisor.quiesce()
                self._dirty = False
                self._mirror_monitor_metrics()
            if self.mode == "inprocess":
                self._dirty = True
                self.sync()
            self._tracer.close_all(self._now)
        observed = len(self.violations)
        return {
            "started_at": self.started_at,
            "stopped_at": self._now,
            "events": self.stats.events,
            "violations": observed,
            "violations_interval": list(self.ledger.interval(observed)),
            "live_instances": self.live_instances(),
            "pending_ops": self.pending_op_count(),
            "ledger": self.ledger.summary(),
        }

    def close(self) -> None:
        """Tear down workers without draining (error paths, __del__)."""
        if self.supervisor is not None:
            self.supervisor.close()
