"""Multiprocessing shard workers and their byte protocol.

Each shard runs a plain :class:`Monitor` in a forked worker process.
Fork (not spawn) is required: property specs carry compiled predicate
closures that do not pickle, and a forked child inherits them directly.
Event batches cross the pipe as the framed encoding from
``netsim/serialize.py`` — the same bytes a recorded trace round-trips
through, so the IPC format is covered by the serialization tests.

Command channel (parent -> worker), one ``send_bytes`` per command:

* ``b"B" + encode_frames(batch)`` — observe the batch;
* ``b"A" + f64(when)``            — advance monitor time;
* ``b"D"``                        — drain all deferred ops and timers;
* ``b"S"``                        — reply with a :class:`ShardSnapshot`
                                    delta on the result channel;
* ``b"Q"``                        — final snapshot, then exit.

Workers reply only when asked (cursor-based deltas), so the data path
never blocks on per-event acknowledgements.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
from multiprocessing.connection import Connection
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.spec import PropertySpec
from ..netsim.serialize import decode_frames, encode_frames
from ..switch.events import DataplaneEvent
from .routing import PropRoute
from .shard import ShardSnapshot, build_shard_monitor, take_snapshot

_F64 = struct.Struct(">d")


def fork_available() -> bool:
    """Whether this platform can run fabric workers at all."""
    return (
        hasattr(os, "fork")
        and "fork" in multiprocessing.get_all_start_methods()
    )


def _worker_main(
    conn: Connection,
    results: Connection,
    props: Sequence[PropertySpec],
    shard_idx: int,
    num_shards: int,
    routes: Mapping[str, PropRoute],
    monitor_kwargs: Optional[Dict[str, object]],
    max_layer: int,
) -> None:
    monitor = build_shard_monitor(
        props, shard_idx, num_shards, routes, monitor_kwargs)
    violation_cursor = shed_cursor = 0
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent died; nothing useful left to do
        tag, payload = message[:1], message[1:]
        if tag == b"B":
            monitor.observe_batch(decode_frames(payload, max_layer=max_layer))
        elif tag == b"A":
            monitor.advance_to(_F64.unpack(payload)[0])
        elif tag == b"D":
            monitor.drain()
        elif tag in (b"S", b"Q"):
            snapshot, violation_cursor, shed_cursor = take_snapshot(
                monitor, shard_idx, violation_cursor, shed_cursor)
            results.send(snapshot)
            if tag == b"Q":
                break
        else:  # pragma: no cover - protocol is closed
            raise ValueError(f"unknown fabric command {tag!r}")


class MpShard:
    """Parent-side handle to one forked shard worker."""

    def __init__(
        self,
        props: Sequence[PropertySpec],
        shard_idx: int,
        num_shards: int,
        routes: Mapping[str, PropRoute],
        monitor_kwargs: Optional[Dict[str, object]],
        max_layer: int,
    ) -> None:
        if not fork_available():
            raise RuntimeError(
                "fabric mode 'mp' needs the fork start method (unavailable "
                "on this platform); use mode='inprocess'")
        ctx = multiprocessing.get_context("fork")
        self._cmd, child_cmd = ctx.Pipe()
        self._results, child_results = ctx.Pipe()
        self.shard_idx = shard_idx
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_cmd, child_results, props, shard_idx, num_shards,
                  routes, monitor_kwargs, max_layer),
            name=f"repro-fabric-shard-{shard_idx}",
            daemon=True,
        )
        self.process.start()
        child_cmd.close()
        child_results.close()

    def send_batch(self, events: List[DataplaneEvent]) -> None:
        self._cmd.send_bytes(b"B" + encode_frames(events))

    def advance_to(self, when: float) -> None:
        self._cmd.send_bytes(b"A" + _F64.pack(when))

    def drain(self) -> None:
        self._cmd.send_bytes(b"D")

    def request_snapshot(self) -> None:
        self._cmd.send_bytes(b"S")

    def recv_snapshot(self) -> ShardSnapshot:
        return self._results.recv()

    def quit(self, timeout: float = 30.0) -> ShardSnapshot:
        """Fetch the final snapshot and reap the worker."""
        self._cmd.send_bytes(b"Q")
        snapshot = self._results.recv()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout)
        self._cmd.close()
        self._results.close()
        return snapshot

    def kill(self) -> None:
        """Hard teardown (error paths only)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5.0)
        self._cmd.close()
        self._results.close()
