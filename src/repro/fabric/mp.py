"""Multiprocessing shard workers and their byte protocol.

Each shard runs a plain :class:`Monitor` in a forked worker process.
Fork (not spawn) is required: property specs carry compiled predicate
closures that do not pickle, and a forked child inherits them directly.
Event batches cross the pipe as the framed encoding from
``netsim/serialize.py`` — the same bytes a recorded trace round-trips
through, so the IPC format is covered by the serialization tests.

Command channel (parent -> worker), one ``send_bytes`` per command:

* ``b"B" + encode_frames(batch)`` — observe the batch;
* ``b"A" + f64(when)``            — advance monitor time;
* ``b"D"``                        — drain all deferred ops and timers;
* ``b"H" + u32(seq)``             — heartbeat; reply ``b"A" + u32(seq)``;
* ``b"S"``                        — reply with a :class:`ShardSnapshot`
                                    delta on the result channel;
* ``b"C"``                        — like ``S`` but the snapshot carries
                                    a full :class:`MonitorState`
                                    checkpoint;
* ``b"R" + pickle(MonitorState)`` — restore a checkpoint into the
                                    (fresh) worker monitor;
* ``b"Q"``                        — final snapshot, then exit.

Result channel (worker -> parent), also tagged ``send_bytes``:

* ``b"A" + u32(seq)``      — heartbeat ack echoing the sequence number;
* ``b"S" + pickle(snap)``  — a snapshot/checkpoint reply.

Workers reply only when asked (cursor-based deltas), so the data path
never blocks on per-event acknowledgements.  Every parent-side receive
is bounded by a ``poll`` timeout and every send checks pipe writability
first — a crashed or wedged worker surfaces as :class:`ShardDied` /
:class:`ShardTimeout` instead of a deadlock, which is what the fabric
supervisor turns into a restart.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import signal
import struct
from multiprocessing.connection import Connection
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.monitor import MonitorState
from ..core.spec import PropertySpec
from ..netsim.serialize import decode_frames, encode_frames
from ..switch.events import DataplaneEvent
from .routing import PropRoute
from .shard import ShardSnapshot, build_shard_monitor, take_snapshot

_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


class ShardDied(RuntimeError):
    """The worker process is gone (crash, kill, or closed pipe)."""


class ShardTimeout(RuntimeError):
    """The worker did not answer (or accept work) within the deadline."""


def fork_available() -> bool:
    """Whether this platform can run fabric workers at all."""
    return (
        hasattr(os, "fork")
        and "fork" in multiprocessing.get_all_start_methods()
    )


def _worker_main(
    conn: Connection,
    results: Connection,
    props: Sequence[PropertySpec],
    shard_idx: int,
    num_shards: int,
    routes: Mapping[str, PropRoute],
    monitor_kwargs: Optional[Dict[str, object]],
    max_layer: int,
) -> None:
    monitor = build_shard_monitor(
        props, shard_idx, num_shards, routes, monitor_kwargs)
    violation_cursor = shed_cursor = 0
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent died; nothing useful left to do
        tag, payload = message[:1], message[1:]
        if tag == b"B":
            monitor.observe_batch(decode_frames(payload, max_layer=max_layer))
        elif tag == b"A":
            monitor.advance_to(_F64.unpack(payload)[0])
        elif tag == b"D":
            monitor.drain()
        elif tag == b"H":
            results.send_bytes(b"A" + payload)
        elif tag == b"R":
            monitor.restore_state(pickle.loads(payload))
        elif tag in (b"S", b"C", b"Q"):
            snapshot, violation_cursor, shed_cursor = take_snapshot(
                monitor, shard_idx, violation_cursor, shed_cursor,
                with_state=(tag == b"C"))
            results.send_bytes(
                b"S" + pickle.dumps(snapshot, pickle.HIGHEST_PROTOCOL))
            if tag == b"Q":
                break
        else:  # pragma: no cover - protocol is closed
            raise ValueError(f"unknown fabric command {tag!r}")


class MpShard:
    """Parent-side handle to one forked shard worker."""

    def __init__(
        self,
        props: Sequence[PropertySpec],
        shard_idx: int,
        num_shards: int,
        routes: Mapping[str, PropRoute],
        monitor_kwargs: Optional[Dict[str, object]],
        max_layer: int,
        send_timeout: float = 30.0,
    ) -> None:
        if not fork_available():
            raise RuntimeError(
                "fabric mode 'mp' needs the fork start method (unavailable "
                "on this platform); use mode='inprocess'")
        ctx = multiprocessing.get_context("fork")
        self._cmd, child_cmd = ctx.Pipe()
        self._results, child_results = ctx.Pipe()
        self.shard_idx = shard_idx
        self.send_timeout = send_timeout
        self._closed = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_cmd, child_results, props, shard_idx, num_shards,
                  routes, monitor_kwargs, max_layer),
            name=f"repro-fabric-shard-{shard_idx}",
            daemon=True,
        )
        self.process.start()
        child_cmd.close()
        child_results.close()

    # -- liveness ----------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def is_alive(self) -> bool:
        return not self._closed and self.process.is_alive()

    # -- sends (bounded, crash-surfacing) ----------------------------------
    def _send(self, message: bytes) -> None:
        """Send one command; raise instead of blocking or EPIPE-ing.

        A dead worker raises :class:`ShardDied` (its pipe end is
        closed); a wedged worker whose pipe buffer is full fails the
        writability select and raises :class:`ShardTimeout` rather than
        blocking the parent forever.  The select is a heuristic — *any*
        buffer space counts as writable — but a stopped worker stops
        draining the pipe, so sustained sends hit the timeout within a
        few batches.
        """
        if self._closed:
            raise ShardDied(f"shard {self.shard_idx}: handle closed")
        try:
            writable = select.select(
                [], [self._cmd.fileno()], [], self.send_timeout)[1]
        except (OSError, ValueError) as exc:
            raise ShardDied(f"shard {self.shard_idx}: {exc}") from exc
        if not writable:
            raise ShardTimeout(
                f"shard {self.shard_idx}: command pipe full for "
                f"{self.send_timeout}s (worker wedged?)")
        try:
            self._cmd.send_bytes(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardDied(f"shard {self.shard_idx}: {exc}") from exc

    def send_batch(self, events: Sequence[DataplaneEvent]) -> None:
        self._send(b"B" + encode_frames(events))

    def advance_to(self, when: float) -> None:
        self._send(b"A" + _F64.pack(when))

    def drain(self) -> None:
        self._send(b"D")

    def ping(self, seq: int) -> None:
        self._send(b"H" + _U32.pack(seq & 0xFFFFFFFF))

    def restore(self, state: MonitorState) -> None:
        self._send(b"R" + pickle.dumps(state, pickle.HIGHEST_PROTOCOL))

    def request_snapshot(self, checkpoint: bool = False) -> None:
        self._send(b"C" if checkpoint else b"S")

    # -- receives (bounded) ------------------------------------------------
    def recv_reply(self, timeout: Optional[float]) -> Optional[bytes]:
        """One tagged reply, or None if nothing arrived in ``timeout``."""
        if self._closed:
            raise ShardDied(f"shard {self.shard_idx}: handle closed")
        try:
            if not self._results.poll(timeout):
                return None
            return self._results.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ShardDied(f"shard {self.shard_idx}: {exc}") from exc

    def recv_snapshot(
        self, timeout: Optional[float] = None
    ) -> ShardSnapshot:
        """The next snapshot reply, skipping interleaved heartbeat acks."""
        while True:
            reply = self.recv_reply(timeout)
            if reply is None:
                raise ShardTimeout(
                    f"shard {self.shard_idx}: no snapshot within {timeout}s")
            if reply[:1] == b"S":
                return pickle.loads(reply[1:])
            # b"A" heartbeat ack raced ahead of the snapshot: drop it —
            # a snapshot reply is a stronger liveness proof anyway.

    def recv_ack(self, timeout: Optional[float]) -> Optional[int]:
        """The next heartbeat ack's sequence number, or None on timeout.

        Snapshot replies must not arrive here — the supervisor always
        consumes a requested snapshot before pinging again.
        """
        reply = self.recv_reply(timeout)
        if reply is None:
            return None
        if reply[:1] == b"A":
            return _U32.unpack(reply[1:5])[0]
        raise ShardDied(
            f"shard {self.shard_idx}: unexpected reply {reply[:1]!r} "
            "while awaiting heartbeat ack")

    # -- teardown ----------------------------------------------------------
    def quit(self, timeout: float = 30.0) -> Optional[ShardSnapshot]:
        """Quiesce: final snapshot then reap; None if the worker hung.

        The wait is bounded (the PR-8 version blocked forever on a hung
        worker): after ``timeout`` with no reply the worker is killed
        and ``None`` returned, and the caller ledgers whatever state the
        final snapshot would have carried.
        """
        snapshot: Optional[ShardSnapshot] = None
        try:
            self._send(b"Q")
            snapshot = self.recv_snapshot(timeout)
        except (ShardDied, ShardTimeout):
            snapshot = None
        if snapshot is not None:
            self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
        self._close_pipes()
        return snapshot

    def kill(self, sig: int = signal.SIGKILL) -> None:
        """Hard teardown (error paths, supervisor restarts)."""
        if self.process.is_alive():
            if sig == signal.SIGKILL:
                self.process.kill()
            else:
                self.process.terminate()
            self.process.join(5.0)
        self._close_pipes()

    def _close_pipes(self) -> None:
        if not self._closed:
            self._closed = True
            self._cmd.close()
            self._results.close()
