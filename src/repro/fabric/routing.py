"""Key-partitioned routing: which shard owns which monitor instance.

The paper's observation — and the blueprint paper's ("Relaxing
state-access constraints in stateful programmable data planes",
PAPERS.md) — is that keyed monitor state needs no synchronization when
every event for a key lands on the same executor.  This module derives
that placement statically from the compiler's dispatch plans:

* A property is **keyed** when, for every event class it watches, every
  watcher fully determines the property's key tuple from the event's own
  fields — stage-0 creates via their binds (``key_vars`` is always a
  subset of stage-0 binds, enforced by ``PropertySpec``), later stages
  via ``FieldEq(field, Var)`` guards (``EventPattern.env_guards``).
  Events then route by ``stable_hash(key) % num_shards``.
* Any gap — an unless scan, a stage matching on fewer than all key
  variables, an empty key — makes the property **pinned**: all of its
  events go to one deterministic shard and its instances never span
  shards.  Pinned properties lose parallelism, never correctness.

The :class:`Router` folds every property's route into one per-event-class
plan, so splitting a batch costs one ``event_fields`` call per event
plus a handful of tuple hashes — no per-property dispatch.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from ..core.compile import Watcher, dispatch_plan
from ..core.refs import event_fields
from ..core.spec import PropertySpec
from ..switch.events import DataplaneEvent
from ..telemetry import MetricsRegistry, NullRegistry
from ..telemetry.metrics import COUNT_BUCKETS


def stable_hash(key: Tuple[object, ...]) -> int:
    """Deterministic hash of a key tuple, stable across processes.

    ``hash()`` is salted per interpreter (PYTHONHASHSEED), which would
    scatter one key across shards between the router and a forked
    worker; CRC32 over the tuple's repr is not.  Every key element type
    (ints, strings, addresses, enums) has a deterministic repr.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass(frozen=True)
class PropRoute:
    """Where one property's instances live.

    ``extractors`` (keyed properties only) maps each concrete event
    class to the deduplicated field tuples — in ``key_vars`` order —
    that recover the instance key from an event of that class.
    """

    prop_name: str
    keyed: bool
    #: shard owning ALL of this property's instances when not keyed
    pin: int
    extractors: Mapping[Type[DataplaneEvent], Tuple[Tuple[str, ...], ...]]
    #: every event class any watcher of this property reacts to
    classes: frozenset


def _watcher_key_fields(
    watcher: Watcher, key_vars: Sequence[str]
) -> Optional[Tuple[str, ...]]:
    """The event fields that carry the key for one watcher, or None.

    Creates bind the key variables directly; advance/discharge/unless
    stages only tie an event to an instance through ``field == Var``
    guards, so the key is recoverable exactly when every key variable
    appears in one.
    """
    if watcher.role == "create":
        mapping = {b.var: b.field for b in watcher.pattern.binds}
    else:
        mapping: Dict[str, str] = {}
        for fieldname, var in watcher.pattern.env_guards():
            mapping.setdefault(var, fieldname)
    try:
        return tuple(mapping[k] for k in key_vars)
    except KeyError:
        return None


def build_route(prop: PropertySpec, num_shards: int) -> PropRoute:
    """Analyze one property's dispatch plan into a :class:`PropRoute`."""
    pin = stable_hash((prop.name,)) % num_shards
    plan = dispatch_plan(prop)
    classes = frozenset(plan)
    if not prop.key_vars:
        return PropRoute(prop.name, False, pin, {}, classes)
    extractors: Dict[Type[DataplaneEvent], Tuple[Tuple[str, ...], ...]] = {}
    for cls, watchers in plan.items():
        fields_seen: List[Tuple[str, ...]] = []
        for watcher in watchers:
            key_fields = _watcher_key_fields(watcher, prop.key_vars)
            if key_fields is None:
                # One watcher that cannot name the key (an unless scan,
                # a partial-key stage) poisons the whole property: its
                # events must all see the full instance population.
                return PropRoute(prop.name, False, pin, {}, classes)
            if key_fields not in fields_seen:
                fields_seen.append(key_fields)
        extractors[cls] = tuple(fields_seen)
    return PropRoute(prop.name, True, pin, extractors, classes)


def build_routes(
    props: Iterable[PropertySpec], num_shards: int
) -> Dict[str, PropRoute]:
    return {p.name: build_route(p, num_shards) for p in props}


def shard_key_filter(routes, shard_idx, num_shards):
    """The ownership predicate one shard's :class:`Monitor` runs with.

    Installed as ``Monitor(key_filter=...)``: a routed event reaches
    every shard that *some* property needs it on, so each shard must
    refuse to create instances for keys (or pinned properties) it does
    not own — without this, one event fanned out for property P would
    also seed property Q's instance on P's shard.
    """

    def key_filter(prop_name: str, key: Tuple[object, ...]) -> bool:
        route = routes[prop_name]
        if route.keyed:
            return stable_hash(key) % num_shards == shard_idx
        return route.pin == shard_idx

    return key_filter


class Router:
    """Split event batches into per-shard sub-batches.

    One event can target several shards (different properties extract
    different keys from it); an event no property watches targets none.
    Routing reads each event's field map exactly once and reuses the
    per-class union of all properties' pins and extractor field tuples.
    """

    def __init__(
        self,
        routes: Mapping[str, PropRoute],
        num_shards: int,
        max_layer: int = 7,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.routes = dict(routes)
        self.num_shards = num_shards
        self.max_layer = max_layer
        registry = registry if registry is not None else NullRegistry()
        # Per event class: (static pin shards, deduped extractor tuples).
        plan: Dict[Type[DataplaneEvent],
                   Tuple[List[int], List[Tuple[str, ...]]]] = {}
        for route in self.routes.values():
            for cls in route.classes:
                pins, extractors = plan.setdefault(cls, ([], []))
                if route.keyed:
                    for key_fields in route.extractors[cls]:
                        if key_fields not in extractors:
                            extractors.append(key_fields)
                elif route.pin not in pins:
                    pins.append(route.pin)
        self._plan = {
            cls: (tuple(pins), tuple(extractors))
            for cls, (pins, extractors) in plan.items()
        }
        self.events_total = 0
        self.shard_events = [0] * num_shards
        self._c_events = registry.counter(
            "repro_fabric_router_events_total",
            help="Events offered to the fabric router")
        self._c_shard = [
            registry.counter(
                "repro_fabric_shard_events_total",
                help="Events forwarded to one shard",
                labels={"shard": str(i)})
            for i in range(num_shards)
        ]
        self._h_batch = [
            registry.histogram(
                "repro_fabric_shard_batch_events",
                help="Sub-batch sizes forwarded to one shard per split",
                labels={"shard": str(i)}, buckets=COUNT_BUCKETS)
            for i in range(num_shards)
        ]
        self._g_imbalance = registry.gauge(
            "repro_fabric_router_imbalance",
            help="Max over mean of cumulative per-shard event counts "
                 "(1.0 = perfectly balanced, 0 = no events yet)")

    def split(
        self, events: Sequence[DataplaneEvent]
    ) -> List[List[DataplaneEvent]]:
        batches: List[List[DataplaneEvent]] = [
            [] for _ in range(self.num_shards)
        ]
        plan = self._plan
        num_shards = self.num_shards
        max_layer = self.max_layer
        for event in events:
            entry = plan.get(type(event))
            if entry is None:
                continue  # e.g. a replayed TimerFired: no watcher anywhere
            pins, extractors = entry
            fields = event_fields(event, max_layer=max_layer)
            targets = set(pins)
            for key_fields in extractors:
                try:
                    key = tuple(fields[f] for f in key_fields)
                except KeyError:
                    continue  # field absent: the guarded match would fail
                targets.add(stable_hash(key) % num_shards)
            for shard in targets:
                batches[shard].append(event)
        self.events_total += len(events)
        self._c_events.inc(len(events))
        for idx, batch in enumerate(batches):
            if batch:
                self.shard_events[idx] += len(batch)
                self._c_shard[idx].inc(len(batch))
                self._h_batch[idx].observe(len(batch))
        total = sum(self.shard_events)
        if total:
            mean = total / self.num_shards
            self._g_imbalance.set(max(self.shard_events) / mean)
        return batches
