"""Shard supervision: heartbeats, crash recovery, poison quarantine.

PR 8's fabric assumed immortal workers: a crashed shard silently stopped
monitoring its key slice forever.  The :class:`Supervisor` makes worker
death a *ledgered, recoverable* event instead:

* **Detection** — every parent-side pipe interaction is bounded
  (``ShardDied`` on a closed pipe, ``ShardTimeout`` on a wedged one),
  and a periodic heartbeat (``b"H"`` ping / ``b"A"`` ack) catches
  workers that hang between data-path calls.
* **Recovery** — dead workers restart with exponential backoff under a
  per-shard restart budget.  The replacement is rehydrated from the
  last periodic checkpoint (a :class:`~repro.core.monitor.MonitorState`
  carried on a ``ShardSnapshot``) plus a bounded per-shard journal of
  every batch delivered since that checkpoint, replayed in order, then
  advanced to the fabric's present.  Pipe FIFO ordering makes the
  checkpoint a consistent cut: it reflects exactly the batches sent
  before it, and the journal holds exactly the batches sent after.
* **Honesty** — anything recovery cannot reconstruct (journal overflow,
  deferred split-mode ops at the checkpoint, a shard that exhausts its
  budget) is recorded in the fabric's :class:`OverflowLedger` with both
  impact kinds, so crashes *widen the detection-uncertainty interval*
  instead of silently dropping violations.
* **Quarantine** — a batch whose replay kills the replacement worker
  ``poison_threshold`` times is set aside: removed from the journal,
  ledgered event by event, counted in
  ``repro_fabric_quarantined_batches_total``, and reported via
  :meth:`Supervisor.liveness` — rather than retried until the restart
  budget burns out.

Duplicate suppression: a regular sync between a checkpoint and a crash
already reported some post-checkpoint violations.  Replay re-detects
them — deterministically, in the same order — so the supervisor trims
that many violations (and shed records) from the replacement's first
snapshots before handing them to the fabric's merge.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..core.degradation import IMPACT_FALSE, IMPACT_MISSED, OverflowLedger
from ..core.monitor import MonitorState
from ..switch.events import DataplaneEvent
from ..telemetry import MetricsRegistry, NullRegistry
from ..telemetry.metrics import LATENCY_BUCKETS
from .mp import MpShard, ShardDied, ShardTimeout
from .shard import ShardSnapshot

#: ledger kinds the supervisor writes (both impact kinds each: a lost
#: event could hide a real violation or leave a stale instance that
#: later completes spuriously).
KIND_GAP = "crash-gap"              # journal overflow: events unreplayable
KIND_LOST_OP = "crash-lost-op"      # deferred split ops at the checkpoint
KIND_QUARANTINE = "quarantined-batch"
KIND_SHARD_LOST = "shard-lost"      # restart budget exhausted
KIND_QUIT_TIMEOUT = "shard-quit-timeout"

_BOTH = (IMPACT_MISSED, IMPACT_FALSE)
_FABRIC_PROP = "(fabric)"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for crash detection, restart pacing, and recovery cost."""

    #: wall seconds between heartbeat rounds (``tick()`` rate-limits)
    heartbeat_interval: float = 1.0
    #: wall seconds a worker gets to ack a ping or answer a snapshot
    heartbeat_timeout: float = 5.0
    #: restarts allowed per shard before it is declared failed
    restart_budget: int = 5
    #: backoff before restart attempt k is ``base * 2**k`` (capped)
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: events per shard between checkpoints (``--checkpoint-interval``)
    checkpoint_interval: int = 2048
    #: journal bound, in *batches* per shard; older batches drop into
    #: the ledger as an unrecoverable gap
    journal_batches: int = 512
    #: replay deaths attributed to one batch before it is quarantined
    poison_threshold: int = 2
    #: wall seconds ``quiesce`` waits for a final snapshot per shard
    quiesce_timeout: float = 30.0
    #: wall seconds a full command pipe may stall a send
    send_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, "
                f"got {self.checkpoint_interval}")
        if self.journal_batches < 1:
            raise ValueError(
                f"journal_batches must be >= 1, got {self.journal_batches}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}")
        for name in ("heartbeat_interval", "heartbeat_timeout",
                     "backoff_base", "backoff_max", "quiesce_timeout",
                     "send_timeout"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass
class QuarantineRecord:
    """One poison batch set aside during recovery."""

    shard: int
    events: int
    first_time: float
    last_time: float
    kills: int


@dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    worker: Optional[MpShard] = None
    #: batches delivered (or deferred while down) since the last
    #: checkpoint, oldest first; the recovery replay source.
    journal: Deque[List[DataplaneEvent]] = field(default_factory=deque)
    journal_events: int = 0
    #: events aged out of the bounded journal since the last checkpoint
    journal_dropped: int = 0
    #: how many of ``journal_dropped`` have already been ledgered as a
    #: gap — later restarts only ledger drops newer than this mark
    dropped_ledgered: int = 0
    checkpoint: Optional[MonitorState] = None
    checkpoint_ops_ledgered: bool = False
    restarts: int = 0
    consecutive_failures: int = 0
    failed: bool = False
    down_reason: str = ""
    next_restart_at: float = 0.0
    #: events sent since the last snapshot actually received (what a
    #: quit-timeout loses)
    since_snapshot_events: int = 0
    since_checkpoint_events: int = 0
    #: unique violations / shed records merged since the checkpoint —
    #: becomes the post-restore duplicate-discard count
    merged_violations: int = 0
    merged_sheds: int = 0
    discard_violations: int = 0
    discard_sheds: int = 0
    #: replay deaths per journal batch (key: id() of the batch list,
    #: stable while the journal holds the reference)
    kills: Dict[int, int] = field(default_factory=dict)
    quarantined: int = 0


class Supervisor:
    """Owns the mp workers; turns crashes into restarts and ledger ink.

    The fabric routes every worker interaction through here: sends
    journal first, receives are bounded, and any detected death marks
    the shard *down* (``recovering``) until the backoff elapses and a
    replacement is rehydrated.  While down, routed batches accumulate
    in the journal and are replayed on restart — so a shard that is
    down for a few batches loses nothing, it just answers late.
    """

    def __init__(
        self,
        spawn: Callable[[int], MpShard],
        num_shards: int,
        ledger: OverflowLedger,
        policy: Optional[SupervisorPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        now_fn: Callable[[], float] = lambda: 0.0,
        merge_cb: Optional[Callable[[ShardSnapshot], None]] = None,
        down_cb: Optional[Callable[[int], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.num_shards = num_shards
        self.ledger = ledger
        self.registry = registry if registry is not None else NullRegistry()
        self._spawn = spawn
        self._now_fn = now_fn      # fabric/monitor (virtual) time
        self._merge_cb = merge_cb  # fabric._merge
        self._down_cb = down_cb    # fabric counter-base fold
        self._clock = clock        # wall time for backoff/heartbeats
        self._sleep = sleep
        self._hb_seq = 0
        self._last_hb = clock()
        self.quarantine_log: List[QuarantineRecord] = []
        self.states = [_ShardState() for _ in range(num_shards)]
        self._c_restarts = [
            self.registry.counter(
                "repro_fabric_shard_restarts_total",
                help="Worker restarts performed by the fabric supervisor",
                labels={"shard": str(i)})
            for i in range(num_shards)
        ]
        self._h_recovery = self.registry.histogram(
            "repro_fabric_recovery_seconds",
            help="Wall seconds from restart attempt to a rehydrated, "
                 "replayed, and re-advanced replacement worker",
            unit="seconds", buckets=LATENCY_BUCKETS)
        self._c_quarantined = self.registry.counter(
            "repro_fabric_quarantined_batches_total",
            help="Poison batches set aside (ledgered, never retried) "
                 "after repeatedly killing a shard worker")
        self._g_journal = [
            self.registry.gauge(
                "repro_fabric_journal_depth",
                help="Events in one shard's recovery journal (replayable "
                     "since the last checkpoint)",
                labels={"shard": str(i)})
            for i in range(num_shards)
        ]
        self._g_up = [
            self.registry.gauge(
                "repro_fabric_shard_up",
                help="1 when the shard worker is live, 0 while it is "
                     "down/recovering or permanently failed",
                labels={"shard": str(i)})
            for i in range(num_shards)
        ]
        try:
            for idx in range(num_shards):
                self.states[idx].worker = spawn(idx)
                self._g_up[idx].set(1.0)
        except BaseException:
            self.close()
            raise

    # -- data path ---------------------------------------------------------
    def send_batch(self, idx: int, events: List[DataplaneEvent]) -> None:
        """Journal + deliver one routed batch; absorb worker death."""
        st = self.states[idx]
        if st.failed:
            self._ledger_events(KIND_SHARD_LOST, len(events),
                               f"shard={idx} budget exhausted")
            return
        self._journal_append(st, idx, events)
        if st.worker is None:
            # A successful restart replays the whole journal — which
            # already includes the batch just appended — so this path
            # must never ALSO deliver it directly (double-observation).
            self._maybe_restart(idx)
            return
        try:
            st.worker.send_batch(events)
        except (ShardDied, ShardTimeout) as exc:
            self._on_death(idx, str(exc))
            return
        st.since_snapshot_events += len(events)
        st.since_checkpoint_events += len(events)
        if st.since_checkpoint_events >= self.policy.checkpoint_interval:
            self._checkpoint(idx)

    def advance_to(self, when: float) -> None:
        for idx, st in enumerate(self.states):
            if st.worker is None:
                continue
            try:
                st.worker.advance_to(when)
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, str(exc))

    def drain(self) -> None:
        for idx, st in enumerate(self.states):
            if st.worker is None:
                continue
            try:
                st.worker.drain()
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, str(exc))

    # -- snapshots ---------------------------------------------------------
    def sync_snapshots(self) -> List[Optional[ShardSnapshot]]:
        """One snapshot per shard; None for shards down this round."""
        requested: List[int] = []
        for idx, st in enumerate(self.states):
            if st.worker is None and not st.failed:
                self._maybe_restart(idx)
            if st.worker is None:
                continue
            try:
                st.worker.request_snapshot()
                requested.append(idx)
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, str(exc))
        out: List[Optional[ShardSnapshot]] = [None] * self.num_shards
        for idx in requested:
            st = self.states[idx]
            try:
                snap = st.worker.recv_snapshot(self.policy.heartbeat_timeout)
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, str(exc))
                continue
            out[idx] = self._deliver(idx, snap)
        return out

    def _deliver(self, idx: int, snap: ShardSnapshot) -> ShardSnapshot:
        """Trim replay re-detections, account, and merge one snapshot."""
        st = self.states[idx]
        if st.discard_violations:
            dropped = min(st.discard_violations, len(snap.violations))
            snap.violations = snap.violations[dropped:]
            st.discard_violations -= dropped
        if st.discard_sheds:
            dropped = min(st.discard_sheds, len(snap.sheds))
            snap.sheds = snap.sheds[dropped:]
            st.discard_sheds -= dropped
        st.merged_violations += len(snap.violations)
        st.merged_sheds += len(snap.sheds)
        st.since_snapshot_events = 0
        if self._merge_cb is not None:
            self._merge_cb(snap)
        return snap

    def _checkpoint(self, idx: int) -> None:
        """Cut a checkpoint: full-state snapshot, then truncate journal."""
        st = self.states[idx]
        if st.worker is None:
            return
        try:
            st.worker.request_snapshot(checkpoint=True)
            snap = st.worker.recv_snapshot(self.policy.heartbeat_timeout)
        except (ShardDied, ShardTimeout) as exc:
            self._on_death(idx, str(exc))
            return
        self._deliver(idx, snap)
        st.checkpoint = snap.state
        st.checkpoint_ops_ledgered = False
        st.journal.clear()
        st.journal_events = 0
        st.journal_dropped = 0
        st.dropped_ledgered = 0
        st.since_checkpoint_events = 0
        st.merged_violations = 0
        st.merged_sheds = 0
        st.kills.clear()
        self._g_journal[idx].set(0.0)

    # -- liveness ----------------------------------------------------------
    def tick(self) -> None:
        """Cheap periodic duty: due restarts and heartbeat rounds.

        Call from the data path (the fabric calls it per batch) or a
        poll loop (the daemon); rate-limited to ``heartbeat_interval``.
        """
        for idx, st in enumerate(self.states):
            if st.worker is None and not st.failed \
                    and self._clock() >= st.next_restart_at:
                self._maybe_restart(idx)
        if self._clock() - self._last_hb < self.policy.heartbeat_interval:
            return
        self._last_hb = self._clock()
        self.heartbeat()

    def heartbeat(self) -> None:
        """Ping every live worker; a missing/late ack kills and recovers."""
        pinged: List[int] = []
        self._hb_seq += 1
        for idx, st in enumerate(self.states):
            if st.worker is None:
                continue
            if not st.worker.is_alive():
                self._on_death(idx, "process exited")
                continue
            try:
                st.worker.ping(self._hb_seq)
                pinged.append(idx)
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, str(exc))
        for idx in pinged:
            st = self.states[idx]
            try:
                ack = st.worker.recv_ack(self.policy.heartbeat_timeout)
            except ShardDied as exc:
                self._on_death(idx, str(exc))
                continue
            if ack is None:
                self._on_death(
                    idx, f"no heartbeat ack within "
                         f"{self.policy.heartbeat_timeout}s")

    def recovering(self) -> List[int]:
        """Shards currently down awaiting (or mid-) restart."""
        return [idx for idx, st in enumerate(self.states)
                if st.worker is None and not st.failed]

    def failed(self) -> List[int]:
        return [idx for idx, st in enumerate(self.states) if st.failed]

    def liveness(self) -> List[Dict[str, object]]:
        """Per-shard health for ``/healthz``, ``/stats``, and reports."""
        out: List[Dict[str, object]] = []
        for idx, st in enumerate(self.states):
            worker = st.worker
            out.append({
                "shard": idx,
                "alive": worker is not None and worker.is_alive(),
                "recovering": worker is None and not st.failed,
                "failed": st.failed,
                "pid": worker.pid if worker is not None else None,
                "restarts": st.restarts,
                "journal_batches": len(st.journal),
                "journal_events": st.journal_events,
                "quarantined_batches": st.quarantined,
                "down_reason": st.down_reason,
            })
        return out

    def worker_pids(self) -> List[Optional[int]]:
        return [st.worker.pid if st.worker is not None else None
                for st in self.states]

    def total_restarts(self) -> int:
        return sum(st.restarts for st in self.states)

    # -- crash handling ----------------------------------------------------
    def _on_death(self, idx: int, reason: str) -> None:
        """Mark a shard down and schedule its restart."""
        st = self.states[idx]
        if st.worker is not None:
            st.worker.kill()
            st.worker = None
        st.down_reason = reason
        backoff = min(
            self.policy.backoff_max,
            self.policy.backoff_base * (2 ** st.consecutive_failures))
        st.consecutive_failures += 1
        st.next_restart_at = self._clock() + backoff
        self._g_up[idx].set(0.0)
        if self._down_cb is not None:
            self._down_cb(idx)

    def _maybe_restart(self, idx: int, block: bool = False) -> bool:
        """Restart + rehydrate a down shard; True when it is live again.

        Non-blocking by default: before the backoff deadline this is a
        no-op (the shard keeps journaling).  ``block=True`` (quiesce)
        sleeps through the backoff and retries until live or failed.
        """
        st = self.states[idx]
        while st.worker is None and not st.failed:
            delay = st.next_restart_at - self._clock()
            if delay > 0:
                if not block:
                    return False
                self._sleep(delay)
            if st.restarts >= self.policy.restart_budget:
                self._fail_shard(idx)
                return False
            st.restarts += 1
            self._c_restarts[idx].inc()
            t0 = self._clock()
            try:
                worker = self._spawn(idx)
            except Exception as exc:  # pragma: no cover - spawn is local
                self._on_death(idx, f"respawn failed: {exc}")
                if not block:
                    return False
                continue
            st.worker = worker
            try:
                self._rehydrate(idx)
            except (ShardDied, ShardTimeout) as exc:
                self._on_death(idx, f"died during recovery: {exc}")
                if not block:
                    return False
                continue
            st.consecutive_failures = 0
            st.down_reason = ""
            st.discard_violations = st.merged_violations
            st.discard_sheds = st.merged_sheds
            # The replay delivered everything journaled since the last
            # checkpoint; resume cadence counters from there.
            st.since_checkpoint_events = st.journal_events
            st.since_snapshot_events = st.journal_events
            self._g_up[idx].set(1.0)
            self._h_recovery.observe(self._clock() - t0)
        return st.worker is not None

    def _rehydrate(self, idx: int) -> None:
        """Checkpoint restore + journal replay + advance, with poison
        detection: each replayed batch is pinged through, and a batch
        that keeps killing replacements is quarantined."""
        st = self.states[idx]
        worker = st.worker
        assert worker is not None
        if st.checkpoint is not None:
            worker.restore(st.checkpoint)
            if st.checkpoint.lost_pending_ops \
                    and not st.checkpoint_ops_ledgered:
                st.checkpoint_ops_ledgered = True
                self._ledger_events(
                    KIND_LOST_OP, st.checkpoint.lost_pending_ops,
                    f"shard={idx} deferred ops not in checkpoint")
        if st.journal_dropped > st.dropped_ledgered:
            fresh = st.journal_dropped - st.dropped_ledgered
            st.dropped_ledgered = st.journal_dropped
            self._ledger_events(
                KIND_GAP, fresh,
                f"shard={idx} journal overflow: events lost to replay")
        for batch in list(st.journal):
            try:
                worker.send_batch(batch)
                worker.ping(self._hb_seq)
                ack = worker.recv_ack(self.policy.heartbeat_timeout)
                if ack is None:
                    raise ShardTimeout(
                        f"shard {idx}: replay batch unacknowledged")
            except (ShardDied, ShardTimeout):
                kills = st.kills.get(id(batch), 0) + 1
                st.kills[id(batch)] = kills
                if kills >= self.policy.poison_threshold:
                    self._quarantine(idx, batch, kills)
                raise
            st.kills.pop(id(batch), None)
        worker.advance_to(self._now_fn())

    def _quarantine(self, idx: int, batch: List[DataplaneEvent],
                    kills: int) -> None:
        st = self.states[idx]
        try:
            st.journal.remove(batch)
            st.journal_events -= len(batch)
            self._g_journal[idx].set(float(st.journal_events))
        except ValueError:  # pragma: no cover - defensive
            pass
        st.quarantined += 1
        self._c_quarantined.inc()
        self.quarantine_log.append(QuarantineRecord(
            shard=idx, events=len(batch),
            first_time=batch[0].time if batch else 0.0,
            last_time=batch[-1].time if batch else 0.0,
            kills=kills))
        self._ledger_events(
            KIND_QUARANTINE, len(batch),
            f"shard={idx} poison batch after {kills} worker deaths")

    def _fail_shard(self, idx: int) -> None:
        """Budget exhausted: give up, ledger everything unrecovered."""
        st = self.states[idx]
        st.failed = True
        st.down_reason = (
            f"restart budget ({self.policy.restart_budget}) exhausted")
        lost = st.journal_events \
            + (st.journal_dropped - st.dropped_ledgered)
        if lost:
            self._ledger_events(
                KIND_SHARD_LOST, lost,
                f"shard={idx} unrecovered at budget exhaustion")
        st.journal.clear()
        st.journal_events = 0
        st.journal_dropped = 0
        st.dropped_ledgered = 0
        self._g_journal[idx].set(0.0)
        self._g_up[idx].set(0.0)

    # -- teardown ----------------------------------------------------------
    def quiesce(self) -> List[Optional[ShardSnapshot]]:
        """Final snapshots: force down shards live, then bounded quits."""
        out: List[Optional[ShardSnapshot]] = [None] * self.num_shards
        horizon = self._now_fn()
        for idx, st in enumerate(self.states):
            if st.worker is None and not st.failed:
                # Block through the backoff so end-of-run state is not
                # lost to unlucky timing; failure is still terminal.
                if self._maybe_restart(idx, block=True):
                    try:
                        st.worker.advance_to(horizon)
                        st.worker.drain()
                    except (ShardDied, ShardTimeout) as exc:
                        self._on_death(idx, str(exc))
                        continue
            if st.worker is None:
                continue
            snap = st.worker.quit(self.policy.quiesce_timeout)
            if snap is None:
                # Hung at quiesce: the worker was killed; whatever it
                # saw since its last snapshot is unaccounted for.
                self._ledger_events(
                    KIND_QUIT_TIMEOUT, max(1, st.since_snapshot_events),
                    f"shard={idx} no final snapshot within "
                    f"{self.policy.quiesce_timeout}s")
                st.worker = None
                st.down_reason = "hung at quiesce"
                self._g_up[idx].set(0.0)
                continue
            out[idx] = self._deliver(idx, snap)
            st.worker = None
            self._g_up[idx].set(0.0)
        return out

    def close(self) -> None:
        """Hard teardown of every worker (error paths, ``__del__``)."""
        for st in self.states:
            if st.worker is not None:
                st.worker.kill()
                st.worker = None

    # -- ledger ------------------------------------------------------------
    def _ledger_events(self, kind: str, count: int, detail: str) -> None:
        now = self._now_fn()
        for _ in range(count):
            self.ledger.record(kind, _FABRIC_PROP, detail, now, _BOTH)

    def _journal_append(self, st: _ShardState, idx: int,
                        events: List[DataplaneEvent]) -> None:
        st.journal.append(list(events))
        st.journal_events += len(events)
        while len(st.journal) > self.policy.journal_batches:
            aged = st.journal.popleft()
            st.journal_events -= len(aged)
            st.journal_dropped += len(aged)
            st.kills.pop(id(aged), None)
        self._g_journal[idx].set(float(st.journal_events))
