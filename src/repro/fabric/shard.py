"""One shard: a plain :class:`Monitor` that owns a key partition.

A shard is not a new engine — it is the existing monitor with a
``key_filter`` installed, so every semantic feature (timers, split mode,
degradation, provenance) works unchanged per shard.  This module builds
shard monitors and snapshots their state into picklable deltas the
fabric merges into its single external view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.degradation import ShedRecord
from ..core.monitor import Monitor, MonitorState, MonitorStats
from ..core.spec import PropertySpec
from ..core.violations import Violation
from .routing import PropRoute, shard_key_filter

#: MonitorStats attributes a snapshot carries (counter name -> metric).
SNAPSHOT_COUNTERS = tuple(MonitorStats._COUNTERS)
SNAPSHOT_GAUGES = tuple(MonitorStats._GAUGES)


def build_shard_monitor(
    props: Sequence[PropertySpec],
    shard_idx: int,
    num_shards: int,
    routes: Mapping[str, PropRoute],
    monitor_kwargs: Optional[Dict[str, object]] = None,
) -> Monitor:
    """A monitor owning shard ``shard_idx`` of the key space.

    Every shard registers EVERY property: an event fanned out for one
    property's key may also match another property's watchers, and the
    key filter — not the property set — is what scopes ownership.
    """
    kwargs = dict(monitor_kwargs or {})
    kwargs["key_filter"] = shard_key_filter(routes, shard_idx, num_shards)
    monitor = Monitor(**kwargs)
    for prop in props:
        monitor.add_property(prop)
    return monitor


@dataclass
class ShardSnapshot:
    """A shard's state delta since the previous snapshot.

    Counters and gauges are cumulative (cheap, idempotent to re-read);
    violations and shed records are deltas past a cursor so the fabric
    appends each exactly once.  Everything here pickles — violations
    carry events and provenance records, which are plain dataclasses —
    so the same type crosses the multiprocessing result channel.
    """

    shard: int
    now: float
    live_instances: int
    pending_ops: int
    counters: Dict[str, float]
    peaks: Dict[str, float]
    violations: List[Violation] = field(default_factory=list)
    sheds: List[ShedRecord] = field(default_factory=list)
    #: full recoverable state, attached only on checkpoint requests —
    #: regular syncs stay cheap deltas.
    state: Optional[MonitorState] = None


def take_snapshot(
    monitor: Monitor,
    shard_idx: int,
    violation_cursor: int,
    shed_cursor: int,
    with_state: bool = False,
) -> Tuple[ShardSnapshot, int, int]:
    """Snapshot ``monitor``; returns (snapshot, new cursors).

    ``with_state=True`` additionally exports the monitor's recoverable
    state (:meth:`Monitor.export_state`), turning the snapshot into a
    checkpoint a replacement worker can be rehydrated from.
    """
    stats = monitor.stats
    snapshot = ShardSnapshot(
        shard=shard_idx,
        now=monitor.now,
        live_instances=monitor.live_instances(),
        pending_ops=monitor.pending_op_count(),
        counters={name: getattr(stats, name) for name in SNAPSHOT_COUNTERS},
        peaks={name: getattr(stats, name) for name in SNAPSHOT_GAUGES},
        violations=list(monitor.violations[violation_cursor:]),
        sheds=list(monitor.ledger.records[shed_cursor:]),
        state=monitor.export_state() if with_state else None,
    )
    return snapshot, len(monitor.violations), len(monitor.ledger.records)
