"""Sharded monitor fabric: key-partitioned multi-core execution.

See :mod:`repro.fabric.fabric` for the :class:`ShardedMonitor` facade,
:mod:`repro.fabric.routing` for the key-partitioning analysis, and
:mod:`repro.fabric.mp` for the forked-worker transport.
"""

from .fabric import FABRIC_MODES, FabricStats, ShardedMonitor
from .mp import fork_available
from .routing import PropRoute, Router, build_route, build_routes, \
    shard_key_filter, stable_hash
from .shard import ShardSnapshot, build_shard_monitor, take_snapshot

__all__ = [
    "FABRIC_MODES",
    "FabricStats",
    "PropRoute",
    "Router",
    "ShardSnapshot",
    "ShardedMonitor",
    "build_route",
    "build_routes",
    "build_shard_monitor",
    "fork_available",
    "shard_key_filter",
    "stable_hash",
    "take_snapshot",
]
