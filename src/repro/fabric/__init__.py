"""Sharded monitor fabric: key-partitioned multi-core execution.

See :mod:`repro.fabric.fabric` for the :class:`ShardedMonitor` facade,
:mod:`repro.fabric.routing` for the key-partitioning analysis,
:mod:`repro.fabric.mp` for the forked-worker transport, and
:mod:`repro.fabric.supervise` for crash detection and recovery.
"""

from .fabric import FABRIC_MODES, FabricStats, ShardedMonitor
from .mp import MpShard, ShardDied, ShardTimeout, fork_available
from .routing import PropRoute, Router, build_route, build_routes, \
    shard_key_filter, stable_hash
from .shard import ShardSnapshot, build_shard_monitor, take_snapshot
from .supervise import QuarantineRecord, Supervisor, SupervisorPolicy

__all__ = [
    "FABRIC_MODES",
    "FabricStats",
    "MpShard",
    "PropRoute",
    "QuarantineRecord",
    "Router",
    "ShardDied",
    "ShardSnapshot",
    "ShardTimeout",
    "ShardedMonitor",
    "Supervisor",
    "SupervisorPolicy",
    "build_route",
    "build_routes",
    "build_shard_monitor",
    "fork_available",
    "shard_key_filter",
    "stable_hash",
    "take_snapshot",
]
