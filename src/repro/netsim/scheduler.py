"""Discrete-event scheduler driving the network simulation.

The scheduler owns a :class:`~repro.netsim.clock.VirtualClock` and a priority
queue of timestamped callbacks.  Components (links, hosts, the monitor's
timer wheel, workload generators) schedule work at absolute or relative
times; :meth:`EventScheduler.run` drains the queue in timestamp order,
advancing the clock to each event as it fires.

Ties are broken by insertion order (FIFO), which keeps traces deterministic
— important because property-violation witnesses are *sequences* of
observations and the tests assert exact orderings.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .clock import VirtualClock


class SchedulerTruncationError(RuntimeError):
    """``run()`` hit ``max_events`` with runnable events still queued.

    A livelocked or runaway event loop (something endlessly rescheduling
    itself) surfaces here instead of looking like a clean finish.  The
    exception carries the loop state for post-mortems; the scheduler's
    ``truncations`` counter and a ``RuntimeWarning`` fire too, for
    callers that catch and continue (chaos soak runs assert it is zero).
    """

    def __init__(self, fired: int, pending: int, now: float) -> None:
        super().__init__(
            f"scheduler truncated at max_events={fired} with {pending} "
            f"event(s) still runnable at t={now!r}")
        self.fired = fired
        self.pending = pending
        self.now = now


@dataclass(frozen=True)
class ScheduledEvent:
    """Handle for a scheduled callback, usable for cancellation."""

    when: float
    seq: int
    label: str

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


@dataclass
class _QueueEntry:
    key: Tuple[float, int]
    handle: ScheduledEvent
    callback: Optional[Callable[[], Any]]

    def __lt__(self, other: "_QueueEntry") -> bool:
        return self.key < other.key


class EventScheduler:
    """A deterministic discrete-event loop on virtual time.

    >>> sched = EventScheduler()
    >>> fired = []
    >>> _ = sched.call_at(2.0, lambda: fired.append("b"), label="b")
    >>> _ = sched.call_at(1.0, lambda: fired.append("a"), label="a")
    >>> sched.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        #: times ``run()`` was truncated by ``max_events`` (see
        #: :class:`SchedulerTruncationError`)
        self.truncations = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises ``ValueError`` — simulated causality
        must flow forward.
        """
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule event at {when!r}, now is {self.clock.now()!r}"
            )
        handle = ScheduledEvent(when=when, seq=next(self._seq), label=label)
        entry = _QueueEntry(key=(when, handle.seq), handle=handle, callback=callback)
        heapq.heappush(self._queue, entry)
        return handle

    def call_after(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.call_at(self.clock.now() + delay, callback, label=label)

    def cancel(self, handle: ScheduledEvent) -> bool:
        """Cancel a scheduled event.  Returns False if it already fired."""
        key = (handle.when, handle.seq)
        if key in self._cancelled:
            return False
        for entry in self._queue:
            if entry.handle is handle and entry.callback is not None:
                self._cancelled.add(key)
                entry.callback = None
                return True
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if e.callback is not None)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or None if idle."""
        for entry in sorted(self._queue):
            if entry.callback is not None:
                return entry.key[0]
        return None

    def step(self) -> bool:
        """Fire the single earliest pending event.  Returns False if idle."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.callback is None:
                continue
            self.clock.advance_to(entry.key[0])
            callback, entry.callback = entry.callback, None
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Drain the queue in order; returns the number of events fired.

        ``until`` bounds the clock: events stamped strictly later are left
        queued and the clock is advanced exactly to ``until``.  ``max_events``
        is a runaway guard for event loops that reschedule themselves:
        hitting it with runnable events still queued raises
        :class:`SchedulerTruncationError` (a ``RuntimeError``), increments
        :attr:`truncations`, and emits a ``RuntimeWarning``.  Draining the
        queue in *exactly* ``max_events`` steps is a clean finish, not a
        truncation.
        """
        fired = 0
        while fired < max_events:
            upcoming = self.next_event_time()
            if upcoming is None:
                break
            if until is not None and upcoming > until:
                break
            if not self.step():
                break
            fired += 1
        else:
            upcoming = self.next_event_time()
            if upcoming is not None and (until is None or upcoming <= until):
                self.truncations += 1
                warnings.warn(
                    f"scheduler truncated at max_events={max_events} with "
                    f"{self.pending()} event(s) still runnable",
                    RuntimeWarning,
                    stacklevel=2,
                )
                raise SchedulerTruncationError(
                    fired, self.pending(), self.clock.now())
        if until is not None and until > self.clock.now():
            self.clock.advance_to(until)
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventScheduler(now={self.clock.now()!r}, pending={self.pending()})"
        )
