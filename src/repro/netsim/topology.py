"""Hosts, links, and topology wiring.

The paper scopes itself to properties monitorable at a *single switch*, so
topologies here are small: hosts hanging off one switch, or a short chain
of switches.  Links carry propagation delay on virtual time and can be
failed, which triggers the out-of-band port-down events that the
multiple-match property (Feature 8) observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.packet import Packet
from .scheduler import EventScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..switch.switch import Switch


@dataclass
class ReceivedPacket:
    """A packet delivered to a host, with its arrival time."""

    time: float
    packet: Packet


class Host:
    """An end host: one MAC, one IPv4 address, one switch attachment."""

    def __init__(
        self,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        scheduler: EventScheduler,
    ) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self.scheduler = scheduler
        self.received: List[ReceivedPacket] = []
        self._switch: Optional["Switch"] = None
        self._port: Optional[int] = None
        self._link_delay = 0.0
        self._uplink: Optional[Callable[[Packet], None]] = None
        self.on_receive: Optional[Callable[["Host", Packet], None]] = None

    def attach(self, switch: "Switch", port: int, link_delay: float = 1e-6) -> None:
        """Plug this host into a switch port via a delayed link."""
        self._switch = switch
        self._port = port
        self._link_delay = link_delay
        self._uplink = lambda packet: switch.receive(packet, port)
        switch.attach(port, self._deliver)

    def wrap_uplink(
        self,
        wrapper: Callable[[Callable[[Packet], None]], Callable[[Packet], None]],
    ) -> None:
        """Interpose on host->switch delivery (chaos fault injection).

        Applies to packets already in flight too: ``send`` resolves the
        uplink at delivery time, not at call time.
        """
        if self._uplink is None:
            raise RuntimeError(f"host {self.name} is not attached to a switch")
        self._uplink = wrapper(self._uplink)

    def _deliver(self, packet: Packet) -> None:
        self.received.append(ReceivedPacket(time=self.scheduler.clock.now(), packet=packet))
        if self.on_receive is not None:
            self.on_receive(self, packet)

    def send(self, packet: Packet) -> None:
        """Transmit toward the switch, after the link's propagation delay."""
        if self._switch is None or self._port is None:
            raise RuntimeError(f"host {self.name} is not attached to a switch")
        self.scheduler.call_after(
            self._link_delay,
            lambda: self._uplink(packet),
            label=f"{self.name}-send",
        )

    def send_at(self, when: float, packet: Packet) -> None:
        """Transmit at an absolute virtual time."""
        if self._switch is None or self._port is None:
            raise RuntimeError(f"host {self.name} is not attached to a switch")
        self.scheduler.call_at(
            when + self._link_delay,
            lambda: self._uplink(packet),
            label=f"{self.name}-send",
        )

    @property
    def port(self) -> Optional[int]:
        return self._port

    def packets_received(self) -> List[Packet]:
        return [r.packet for r in self.received]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, {self.mac}, {self.ip})"


class SwitchLink:
    """A bidirectional link between two switch ports (with delay)."""

    def __init__(
        self,
        a: "Switch",
        a_port: int,
        b: "Switch",
        b_port: int,
        scheduler: EventScheduler,
        delay: float = 1e-6,
    ) -> None:
        self.a, self.a_port = a, a_port
        self.b, self.b_port = b, b_port
        self.scheduler = scheduler
        self.delay = delay
        self.up = True
        a.attach(a_port, self._toward_b)
        b.attach(b_port, self._toward_a)

    def _toward_b(self, packet: Packet) -> None:
        if self.up:
            self.scheduler.call_after(
                self.delay, lambda: self.b.receive(packet, self.b_port), label="link"
            )

    def _toward_a(self, packet: Packet) -> None:
        if self.up:
            self.scheduler.call_after(
                self.delay, lambda: self.a.receive(packet, self.a_port), label="link"
            )

    def fail(self) -> None:
        """Take the link down; both endpoints observe port-down (OOB)."""
        if not self.up:
            return
        self.up = False
        self.a.set_port_status(self.a_port, up=False)
        self.b.set_port_status(self.b_port, up=False)

    def restore(self) -> None:
        if self.up:
            return
        self.up = True
        self.a.set_port_status(self.a_port, up=True)
        self.b.set_port_status(self.b_port, up=True)


class Network:
    """Container wiring switches, hosts, and links on one scheduler."""

    def __init__(self, scheduler: Optional[EventScheduler] = None) -> None:
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.switches: Dict[str, "Switch"] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[SwitchLink] = []

    def add_switch(self, switch_id: str, **kwargs) -> "Switch":
        if switch_id in self.switches:
            raise ValueError(f"duplicate switch id {switch_id!r}")
        from ..switch.switch import Switch

        switch = Switch(switch_id, self.scheduler, **kwargs)
        self.switches[switch_id] = switch
        return switch

    def add_host(
        self,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        switch: "Switch",
        port: int,
        link_delay: float = 1e-6,
    ) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(name, mac, ip, self.scheduler)
        host.attach(switch, port, link_delay=link_delay)
        self.hosts[name] = host
        return host

    def link(
        self, a: "Switch", a_port: int, b: "Switch", b_port: int, delay: float = 1e-6
    ) -> SwitchLink:
        link = SwitchLink(a, a_port, b, b_port, self.scheduler, delay=delay)
        self.links.append(link)
        return link

    def run(self, until: Optional[float] = None) -> int:
        """Drive the simulation; returns events fired."""
        return self.scheduler.run(until=until)

    @property
    def now(self) -> float:
        return self.scheduler.clock.now()


def single_switch_network(
    num_hosts: int,
    switch_kwargs: Optional[dict] = None,
    base_ip: str = "10.0.0.",
) -> Tuple[Network, "Switch", List[Host]]:
    """The canonical test topology: N hosts on one switch, port i+1 each."""
    if num_hosts < 1:
        raise ValueError("need at least one host")
    net = Network()
    kwargs = dict(switch_kwargs or {})
    kwargs.setdefault("num_ports", num_hosts)
    switch = net.add_switch("s1", **kwargs)
    hosts = [
        net.add_host(
            f"h{i + 1}",
            MACAddress(i + 1),
            IPv4Address(f"{base_ip}{i + 1}"),
            switch,
            port=i + 1,
        )
        for i in range(num_hosts)
    ]
    return net, switch, hosts
