"""Network simulation substrate: virtual time, scheduling, topology, traces."""

from .chaos import (
    PROFILES,
    ChaosProfile,
    ControlChannel,
    ControlFaultProfile,
    FaultInjector,
    FaultyEventChannel,
    LinkFaultProfile,
    corrupt_packet,
    install_host_chaos,
    install_link_chaos,
)
from .clock import ClockError, VirtualClock, WallClock
from .scheduler import EventScheduler, ScheduledEvent, SchedulerTruncationError
from .topology import Host, Network, SwitchLink, single_switch_network
from .serialize import (
    TraceFormatError,
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
    read_trace,
    save_trace,
)
from .trace import TraceRecorder, TraceReplayer
from .workload import (
    TimedPacket,
    arp_request_storm,
    l2_pairs,
    poisson_arrivals,
    send_all,
    tcp_conversations,
    udp_flows,
)

__all__ = [
    "PROFILES",
    "ChaosProfile",
    "ControlChannel",
    "ControlFaultProfile",
    "FaultInjector",
    "FaultyEventChannel",
    "LinkFaultProfile",
    "corrupt_packet",
    "install_host_chaos",
    "install_link_chaos",
    "ClockError",
    "VirtualClock",
    "WallClock",
    "EventScheduler",
    "ScheduledEvent",
    "SchedulerTruncationError",
    "Host",
    "Network",
    "SwitchLink",
    "single_switch_network",
    "TraceFormatError",
    "dump_trace",
    "event_from_dict",
    "event_to_dict",
    "load_trace",
    "read_trace",
    "save_trace",
    "TraceRecorder",
    "TraceReplayer",
    "TimedPacket",
    "arp_request_storm",
    "l2_pairs",
    "poisson_arrivals",
    "send_all",
    "tcp_conversations",
    "udp_flows",
]
