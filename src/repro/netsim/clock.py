"""Virtual time for deterministic simulation — and its wall-clock twin.

Every component in the reproduction — the switch pipeline, the monitor's
timer wheel, workload generators — reads time from a :class:`VirtualClock`
rather than the wall clock.  This makes timeout semantics (Features 3 and 7
of the paper) exactly testable: a test can advance time to one tick before a
deadline and assert nothing fired, then cross the deadline and assert the
timeout action ran.

Time is a float number of seconds since simulation start.  The clock is
monotonic by construction: it can only be advanced.

:class:`WallClock` is the live-daemon counterpart: the same ``now()``
shape, but backed by a monotonic real-time source and re-zeroed at
construction, so ``repro serve`` timestamps ("seconds since the daemon
started") read exactly like replay timestamps ("seconds since the
simulation started").  The source is injectable, which is how the test
suite drives "wall" time deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class ClockError(Exception):
    """Raised on attempts to move a :class:`VirtualClock` backwards."""


class VirtualClock:
    """A monotonic, manually-advanced simulation clock.

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    1.5
    >>> clock.advance_to(10.0)
    10.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulation time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``.

        Advancing to the current time is a no-op; moving backwards raises
        :class:`ClockError`.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"


class WallClock:
    """Monotonic wall time, zeroed at construction.

    Shares :class:`VirtualClock`'s read interface (``now()`` in float
    seconds, never decreasing) but advances on its own: real time passes
    whether or not anything calls it.  ``source`` defaults to
    :func:`time.monotonic`; tests inject a fake to script the passage of
    wall time.

    >>> ticks = iter([100.0, 100.25, 107.5])
    >>> clock = WallClock(source=lambda: next(ticks))
    >>> clock.now()
    0.25
    >>> clock.now()
    7.5
    """

    __slots__ = ("_source", "_epoch", "_last")

    def __init__(self, source: Optional[Callable[[], float]] = None) -> None:
        self._source = source if source is not None else time.monotonic
        self._epoch = self._source()
        self._last = 0.0

    def now(self) -> float:
        """Seconds since this clock was created (monotonic, >= 0)."""
        elapsed = self._source() - self._epoch
        if elapsed > self._last:
            self._last = elapsed
        return self._last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WallClock(now={self.now()!r})"
