"""Deterministic network fault injection (the chaos layer).

The paper's Sec. 3.3 is about what happens when the conditions the monitor
was designed for stop holding: state updates lag behind line rate, instance
tables outgrow the pipeline, and the network itself misbehaves.  This module
supplies the *network* half of that story — seeded, reproducible fault
injection for links, host attachments, and the monitor's control channel —
while :mod:`repro.core.degradation` supplies the monitor half (bounded
stores, backpressure, the overflow ledger).

Everything here is plain data plus scheduler callbacks: no imports from
``repro.core``, so the monitor can import fault profiles (for its control
channel) without a cycle.  All randomness derives from
``random.Random(f"{seed}:{name}:{fault}")`` streams — one stream per fault
kind, so enabling one fault never reshuffles another's firing pattern, and
identical seeds give byte-identical chaos.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..packet.packet import Packet
from .scheduler import EventScheduler

#: gap between an original delivery and its injected duplicate.
DUPLICATE_GAP = 1e-6


def _check_rate(name: str, rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name}={rate!r} outside [0, 1]")


def _check_delay(name: str, value: float) -> None:
    if not 0.0 <= value < float("inf"):
        raise ValueError(f"{name}={value!r} must be finite and non-negative")


@dataclass(frozen=True)
class LinkFaultProfile:
    """Seeded fault rates for one link or host attachment.

    ``drop``/``duplicate``/``corrupt`` are per-packet probabilities;
    ``jitter`` adds a uniform extra delay in ``[0, jitter]`` seconds to
    every delivery; ``reorder`` selects packets that additionally wait up
    to ``reorder_window`` seconds, letting later traffic overtake them.
    Corruption truncates the header stack below L2 but preserves the
    packet uid — the frame arrived, its contents did not.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0
    jitter: float = 0.0
    corrupt: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            _check_rate(name, getattr(self, name))
        for name in ("reorder_window", "jitter"):
            _check_delay(name, getattr(self, name))
        if self.reorder > 0.0 and self.reorder_window <= 0.0:
            raise ValueError("reorder > 0 needs a positive reorder_window")

    @property
    def is_null(self) -> bool:
        """True when this profile cannot perturb anything."""
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.reorder == 0.0 and self.jitter == 0.0
                and self.corrupt == 0.0)


@dataclass(frozen=True)
class ControlFaultProfile:
    """Faults on the monitor's control channel (split-mode state updates).

    Models the paper's "updates lag behind line rate": each deferred state
    transition independently gets ``extra_lag`` plus uniform jitter added
    to its apply time, or is dropped outright with ``drop`` probability
    (an update that never reached the datapath).
    """

    drop: float = 0.0
    extra_lag: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("drop", self.drop)
        _check_delay("extra_lag", self.extra_lag)
        _check_delay("jitter", self.jitter)

    @property
    def is_null(self) -> bool:
        return self.drop == 0.0 and self.extra_lag == 0.0 and self.jitter == 0.0

    def channel(self, name: str = "") -> "ControlChannel":
        """A fresh stateful channel (own RNG streams) for one run."""
        return ControlChannel(self, name=name)


class ControlChannel:
    """One run's stateful view of a :class:`ControlFaultProfile`.

    The monitor calls :meth:`perturb` once per deferred op; ``None`` means
    the update was lost, a float is extra seconds of lag (0.0 = on time).
    """

    def __init__(self, profile: ControlFaultProfile, name: str = "") -> None:
        self.profile = profile
        self._drop_rng = random.Random(f"{profile.seed}:{name}:op-drop")
        self._lag_rng = random.Random(f"{profile.seed}:{name}:op-lag")
        self.dropped = 0
        self.delayed = 0

    def perturb(self) -> Optional[float]:
        p = self.profile
        if p.drop > 0.0 and self._drop_rng.random() < p.drop:
            self.dropped += 1
            return None
        extra = p.extra_lag
        if p.jitter > 0.0:
            extra += self._lag_rng.uniform(0.0, p.jitter)
        if extra > 0.0:
            self.delayed += 1
        return extra


def corrupt_packet(packet: Packet) -> Packet:
    """A mangled copy: L2 header only, garbage payload, same uid.

    Keeping the uid models corruption of the frame *contents* — the
    arrival is still the same physical packet, so packet-identity
    properties see it, but every deeper header read fails to parse.
    """
    return Packet(headers=packet.headers[:1], payload=b"\xde\xad",
                  uid=packet.uid)


class FaultInjector:
    """Applies a :class:`LinkFaultProfile` to a delivery callable.

    Wraps the ``deliver(packet)`` function a switch port or host uplink
    calls, rolling per-fault RNG streams in a fixed order (drop, corrupt,
    jitter, reorder, duplicate) so the decision sequence depends only on
    the packet arrival order, never on which faults are enabled.
    """

    def __init__(
        self,
        profile: LinkFaultProfile,
        scheduler: EventScheduler,
        name: str = "",
    ) -> None:
        self.profile = profile
        self.scheduler = scheduler
        self.name = name
        seed = profile.seed
        self._rngs = {
            fault: random.Random(f"{seed}:{name}:{fault}")
            for fault in ("drop", "corrupt", "jitter", "reorder", "duplicate")
        }
        self.counters: Dict[str, int] = {
            "offered": 0, "delivered": 0, "dropped": 0, "duplicated": 0,
            "reordered": 0, "corrupted": 0, "delayed": 0,
        }

    def _fires(self, fault: str, rate: float) -> bool:
        return rate > 0.0 and self._rngs[fault].random() < rate

    def wrap(self, deliver: Callable[[Packet], None]) -> Callable[[Packet], None]:
        """The chaos-wrapped version of a delivery callable."""
        def deliver_with_faults(packet: Packet) -> None:
            self.send(packet, deliver)
        return deliver_with_faults

    def send(self, packet: Packet, deliver: Callable[[Packet], None]) -> None:
        p = self.profile
        self.counters["offered"] += 1
        if self._fires("drop", p.drop):
            self.counters["dropped"] += 1
            return
        if self._fires("corrupt", p.corrupt):
            self.counters["corrupted"] += 1
            packet = corrupt_packet(packet)
        delay = 0.0
        if p.jitter > 0.0:
            delay += self._rngs["jitter"].uniform(0.0, p.jitter)
        if self._fires("reorder", p.reorder):
            self.counters["reordered"] += 1
            delay += self._rngs["reorder"].uniform(0.0, p.reorder_window)
        self.counters["delivered"] += 1
        if delay > 0.0:
            self.counters["delayed"] += 1
            self.scheduler.call_after(
                delay, lambda pk=packet: deliver(pk), label="chaos-delay")
        else:
            deliver(packet)
        if self._fires("duplicate", p.duplicate):
            self.counters["duplicated"] += 1
            self.scheduler.call_after(
                delay + DUPLICATE_GAP, lambda pk=packet: deliver(pk),
                label="chaos-duplicate")


def install_link_chaos(link, profile: LinkFaultProfile) -> FaultInjector:
    """Install fault injection on both directions of a ``SwitchLink``.

    Re-attaches each endpoint port through one shared injector, so the
    fault streams advance in global packet order across both directions.
    """
    name = f"link:{link.a.switch_id}:{link.a_port}:{link.b.switch_id}:{link.b_port}"
    injector = FaultInjector(profile, link.scheduler, name=name)
    link.a.attach(link.a_port, injector.wrap(link._toward_b))
    link.b.attach(link.b_port, injector.wrap(link._toward_a))
    return injector


def install_host_chaos(host, profile: LinkFaultProfile) -> FaultInjector:
    """Install fault injection on a host's attachment, both directions."""
    injector = FaultInjector(profile, host.scheduler, name=f"host:{host.name}")
    host.wrap_uplink(injector.wrap)
    if host._switch is not None and host._port is not None:
        host._switch.attach(host._port, injector.wrap(host._deliver))
    return injector


class FaultyEventChannel:
    """Applies a :class:`LinkFaultProfile` to a recorded event stream.

    Models a lossy monitoring tap: the switch saw every event, but the
    stream the monitor receives is dropped / duplicated / delayed /
    corrupted on the way.  Works on any sequence of dataplane events
    (frozen dataclasses) — perturbed copies are made with
    ``dataclasses.replace`` and the result is re-sorted by perturbed
    time, which is exactly how reordering becomes visible to the
    monitor.  Deterministic for a given (profile.seed, name, stream).
    """

    def __init__(self, profile: LinkFaultProfile, name: str = "") -> None:
        self.profile = profile
        self.name = name
        seed = profile.seed
        self._rngs = {
            fault: random.Random(f"{seed}:{name}:events:{fault}")
            for fault in ("drop", "corrupt", "jitter", "reorder", "duplicate")
        }
        self.counters: Dict[str, int] = {
            "offered": 0, "delivered": 0, "dropped": 0, "duplicated": 0,
            "reordered": 0, "corrupted": 0, "delayed": 0,
        }

    def _fires(self, fault: str, rate: float) -> bool:
        return rate > 0.0 and self._rngs[fault].random() < rate

    def transform(self, events: Sequence) -> List:
        p = self.profile
        out: List[Tuple[float, int, int, object]] = []
        for idx, event in enumerate(events):
            self.counters["offered"] += 1
            if self._fires("drop", p.drop):
                self.counters["dropped"] += 1
                continue
            if self._fires("corrupt", p.corrupt) and \
                    getattr(event, "packet", None) is not None:
                self.counters["corrupted"] += 1
                event = replace(event, packet=corrupt_packet(event.packet))
            delay = 0.0
            if p.jitter > 0.0:
                delay += self._rngs["jitter"].uniform(0.0, p.jitter)
            if self._fires("reorder", p.reorder):
                self.counters["reordered"] += 1
                delay += self._rngs["reorder"].uniform(0.0, p.reorder_window)
            if delay > 0.0:
                self.counters["delayed"] += 1
                event = replace(event, time=event.time + delay)
            self.counters["delivered"] += 1
            out.append((event.time, idx, 0, event))
            if self._fires("duplicate", p.duplicate):
                self.counters["duplicated"] += 1
                dup = replace(event, time=event.time + DUPLICATE_GAP)
                out.append((dup.time, idx, 1, dup))
        out.sort(key=lambda item: (item[0], item[1], item[2]))
        return [item[3] for item in out]


#: eviction policy names understood by the monitor's degradation layer
#: (validated in :mod:`repro.core.degradation`; mirrored here so chaos
#: profiles stay core-free).
EVICT_REJECT = "reject-new"
EVICT_OLDEST = "evict-oldest"
EVICT_LRU = "evict-lru"


@dataclass(frozen=True)
class WorkerCrashProfile:
    """Process faults against the monitor *itself* (fabric workers).

    Unlike every other fault family, these do not perturb the event
    stream or the monitor's internal policies — they SIGKILL fabric
    worker processes mid-run, at fixed fractions of the replay, to
    exercise the supervisor's detect/restart/replay path.  Only
    meaningful for sharded mp runs; ``repro chaos`` dispatches profiles
    with a non-null crash plan to the crash-recovery harness.
    """

    #: SIGKILLs delivered to each shard over one run
    kills_per_shard: int = 0
    #: where in the replay (fraction of events fed) each kill lands;
    #: kill *k* of a shard uses ``at_fractions[k % len]`` staggered by
    #: shard index so shards do not die in the same batch.
    at_fractions: Tuple[float, ...] = (0.5,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kills_per_shard < 0:
            raise ValueError(
                f"kills_per_shard must be >= 0, got {self.kills_per_shard}")
        if not self.at_fractions:
            raise ValueError("at_fractions must not be empty")
        for fraction in self.at_fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"at_fractions entries must be in (0, 1), "
                    f"got {fraction!r}")

    @property
    def is_null(self) -> bool:
        return self.kills_per_shard == 0


@dataclass(frozen=True)
class ChaosProfile:
    """A named, fully-seeded chaos scenario: network + monitor knobs.

    ``mode`` is ``"inline"`` or ``"split"`` (kept as a string so this
    module never imports the switch); the degradation knobs mirror
    :class:`repro.core.degradation.DegradationPolicy` as plain values.
    ``worker_crash`` targets the fabric's worker processes instead of
    the event stream — the monitor as its own failure domain.
    """

    name: str
    description: str
    link: LinkFaultProfile = LinkFaultProfile()
    control: ControlFaultProfile = ControlFaultProfile()
    mode: str = "inline"  # "inline" | "split"
    split_lag: float = 0.0
    max_instances: Optional[int] = None
    eviction: str = EVICT_REJECT
    max_pending_ops: Optional[int] = None
    retry_backoff: float = 1e-3
    max_retries: int = 3
    worker_crash: WorkerCrashProfile = WorkerCrashProfile()

    def __post_init__(self) -> None:
        if self.mode not in ("inline", "split"):
            raise ValueError(f"mode must be 'inline' or 'split', got {self.mode!r}")
        _check_delay("split_lag", self.split_lag)

    @property
    def ledgered(self) -> bool:
        """True when every divergence source is monitor-side.

        Link faults perturb the event stream *before* the monitor sees
        it, so their effect is not in the overflow ledger and the
        uncertainty interval does not bound the clean-run count; such
        profiles report recall only.
        """
        return self.link.is_null

    def degraded(self) -> bool:
        """Does this profile bound monitor state at all?"""
        return self.max_instances is not None or self.max_pending_ops is not None


#: The named fault catalog ``repro chaos`` replays Table 1 under.
PROFILES: Dict[str, ChaosProfile] = {
    "clean": ChaosProfile(
        name="clean",
        description="No faults, inline processing, unbounded state — "
                    "byte-identical to a plain monitor run.",
    ),
    "lossy": ChaosProfile(
        name="lossy",
        description="A degraded monitoring tap: 2% event loss plus "
                    "duplication, reordering, jitter, and corruption; "
                    "the monitor itself stays unbounded and inline.",
        link=LinkFaultProfile(drop=0.02, duplicate=0.01, reorder=0.05,
                              reorder_window=0.01, jitter=0.002,
                              corrupt=0.005, seed=101),
    ),
    "overloaded": ChaosProfile(
        name="overloaded",
        description="A perfect tap into an overloaded monitor: split-mode "
                    "updates lag and drop, instance tables are bounded "
                    "(evict-oldest), and the pending queue backpressures. "
                    "Fully ledgered: reports violations +/- uncertainty.",
        control=ControlFaultProfile(drop=0.05, extra_lag=0.05,
                                    jitter=0.01, seed=202),
        mode="split",
        split_lag=0.0,
        max_instances=24,
        eviction=EVICT_OLDEST,
        max_pending_ops=4,
        retry_backoff=5e-4,
        max_retries=2,
    ),
    "adversarial": ChaosProfile(
        name="adversarial",
        description="Everything at once: heavy loss/reorder/corruption on "
                    "the tap AND an overloaded monitor with reject-new "
                    "bounded tables and an aggressive shed policy.",
        link=LinkFaultProfile(drop=0.08, duplicate=0.04, reorder=0.15,
                              reorder_window=0.05, jitter=0.01,
                              corrupt=0.02, seed=303),
        control=ControlFaultProfile(drop=0.1, extra_lag=0.005,
                                    jitter=0.01, seed=404),
        mode="split",
        split_lag=0.0,
        max_instances=16,
        eviction=EVICT_REJECT,
        max_pending_ops=8,
        retry_backoff=1e-3,
        max_retries=1,
    ),
    "worker-crash": ChaosProfile(
        name="worker-crash",
        description="A perfect tap and an unbounded monitor, but the "
                    "fabric's worker processes are SIGKILLed mid-run "
                    "(once per shard): exercises supervisor detection, "
                    "checkpoint/replay recovery, and ledger honesty. "
                    "Fully ledgered: reports violations +/- uncertainty.",
        worker_crash=WorkerCrashProfile(
            kills_per_shard=1, at_fractions=(0.45,), seed=0),
    ),
}
