"""Synthetic workload generators.

The paper has no released traces, so every benchmark drives the system with
synthetic workloads generated here (DESIGN.md records this substitution).
All generators are deterministic given a seed and produce timestamped
packets (or packet thunks) on virtual time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.builder import (
    arp_request,
    ethernet,
    tcp_fin,
    tcp_packet,
    tcp_syn,
    udp_packet,
)
from ..packet.headers import TCPFlags
from ..packet.packet import Packet


@dataclass(frozen=True)
class TimedPacket:
    """One scheduled transmission: (virtual time, sending port, packet)."""

    time: float
    src_host: int  # 1-based host index == switch port in the canonical topo
    packet: Packet


def _host_mac(i: int) -> MACAddress:
    return MACAddress(i)


def _host_ip(i: int, base: str = "10.0.0.") -> IPv4Address:
    return IPv4Address(f"{base}{i}")


def _ext_ip(i: int) -> IPv4Address:
    return IPv4Address(f"198.51.100.{i}")


def l2_pairs(
    num_hosts: int,
    num_packets: int,
    seed: int = 7,
    start: float = 0.0,
    interval: float = 0.001,
) -> List[TimedPacket]:
    """Plain L2 frames between random host pairs (learning-switch fodder)."""
    rng = random.Random(seed)
    out: List[TimedPacket] = []
    for k in range(num_packets):
        src = rng.randrange(1, num_hosts + 1)
        dst = rng.randrange(1, num_hosts + 1)
        while dst == src:
            dst = rng.randrange(1, num_hosts + 1)
        out.append(
            TimedPacket(
                time=start + k * interval,
                src_host=src,
                packet=ethernet(_host_mac(src), _host_mac(dst)),
            )
        )
    return out


def tcp_conversations(
    num_flows: int,
    packets_per_flow: int = 4,
    seed: int = 11,
    start: float = 0.0,
    interval: float = 0.001,
    internal_host: int = 1,
    external_host: int = 2,
    close_fraction: float = 0.0,
) -> List[TimedPacket]:
    """Bidirectional TCP conversations between an internal and external host.

    Each flow: SYN out, then alternating data packets in both directions,
    optionally a FIN from a random side (``close_fraction`` of flows) —
    the workload exercising the stateful-firewall property family.
    """
    rng = random.Random(seed)
    out: List[TimedPacket] = []
    t = start
    for flow in range(num_flows):
        sport = 10000 + flow
        dport = 80
        a_ip, b_ip = _host_ip(internal_host), _ext_ip(flow % 200 + 1)
        a_mac, b_mac = _host_mac(internal_host), _host_mac(external_host)
        out.append(TimedPacket(t, internal_host,
                               tcp_syn(a_mac, b_mac, a_ip, b_ip, sport, dport)))
        t += interval
        for k in range(packets_per_flow):
            if k % 2 == 0:
                out.append(TimedPacket(t, external_host,
                                       tcp_packet(b_mac, a_mac, b_ip, a_ip, dport, sport)))
            else:
                out.append(TimedPacket(t, internal_host,
                                       tcp_packet(a_mac, b_mac, a_ip, b_ip, sport, dport)))
            t += interval
        if rng.random() < close_fraction:
            out.append(TimedPacket(t, internal_host,
                                   tcp_fin(a_mac, b_mac, a_ip, b_ip, sport, dport)))
            t += interval
    return out


def udp_flows(
    num_flows: int,
    num_hosts: int = 4,
    seed: int = 13,
    start: float = 0.0,
    interval: float = 0.001,
    dst_port: int = 8080,
) -> List[TimedPacket]:
    """Distinct UDP 5-tuples toward one service — load-balancer fodder."""
    rng = random.Random(seed)
    out: List[TimedPacket] = []
    for flow in range(num_flows):
        src = rng.randrange(1, num_hosts + 1)
        out.append(
            TimedPacket(
                time=start + flow * interval,
                src_host=src,
                packet=udp_packet(
                    _host_mac(src),
                    MACAddress(0xFE),
                    _host_ip(src),
                    IPv4Address("10.0.0.100"),
                    src_port=20000 + flow,
                    dst_port=dst_port,
                ),
            )
        )
    return out


def arp_request_storm(
    requester: int,
    target_ip: IPv4Address,
    count: int,
    period: float,
    start: float = 0.0,
) -> List[TimedPacket]:
    """Repeated ARP requests every ``period`` seconds.

    With ``period = T - epsilon`` this is exactly the refresh-storm the
    paper warns about in Feature 7: a never-answered request stream that a
    naively-refreshing timeout would fail to flag.
    """
    return [
        TimedPacket(
            time=start + k * period,
            src_host=requester,
            packet=arp_request(_host_mac(requester), _host_ip(requester), target_ip),
        )
        for k in range(count)
    ]


def poisson_arrivals(
    rate: float,
    duration: float,
    seed: int = 17,
    start: float = 0.0,
) -> Iterator[float]:
    """Timestamps of a Poisson process at ``rate`` events/second."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    rng = random.Random(seed)
    t = start
    end = start + duration
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return
        yield t


def send_all(hosts: Sequence, workload: Sequence[TimedPacket]) -> int:
    """Schedule a workload onto hosts (1-based indices).  Returns count."""
    for item in workload:
        hosts[item.src_host - 1].send_at(item.time, item.packet)
    return len(workload)
