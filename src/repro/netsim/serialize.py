"""Trace serialization: dataplane event streams as JSON lines.

Recorded traces can be written to disk and replayed later (or on another
machine) into any monitor — the repository's stand-in for pcap capture.
Packets are serialized via their wire encoding (hex), so a reloaded trace
re-parses through the same codecs the live path uses.  Packet uids are
preserved explicitly: identity (Feature 5) must survive the round trip,
and re-parsing alone would mint fresh uids.

A trace may begin with one **header line** (``kind: "TraceHeader"``)
recording provenance — schema version, generator seed, host count, packet
count — which ``repro stats`` echoes back so a snapshot is traceable to
the workload that produced it.  Readers skip the header transparently
(``load_trace`` returns events only; use ``read_trace_with_header`` to
get both), so headered traces stay readable by older tooling patterns.

Next to the line-oriented JSONL format lives a **framed batch encoding**
(:func:`encode_frames` / :func:`decode_frames`): a magic + count prefix
followed by length-prefixed frames, one per event.  The sharded fabric
uses it as the IPC wire format between the batching router and its
``multiprocessing`` workers — length prefixes let a reader consume a
batch without scanning for newlines, and the framing survives payloads
that themselves contain newlines.
"""

from __future__ import annotations

import json
import struct
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..packet.addresses import IPv4Address, MACAddress

from ..packet.packet import Packet
from ..packet.parser import encode as wire_encode
from ..packet.parser import parse as wire_parse
from ..switch.events import (
    DataplaneEvent,
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


class TraceFormatError(ValueError):
    """Raised on malformed trace lines."""


#: Bumped whenever the event dict layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def _key_scalar_to_json(value: object) -> object:
    """One instance-key element as JSON.

    JSON-native scalars pass through untouched (old traces stay
    readable); the richer types a monitor key can carry — addresses and
    the event-metadata enums — get a ``{"t": ..., "v": ...}`` tag so the
    round trip restores the original type, not its string shadow.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, IPv4Address):
        return {"t": "ip", "v": str(value)}
    if isinstance(value, MACAddress):
        return {"t": "mac", "v": str(value)}
    if isinstance(value, EgressAction):
        return {"t": "egress-action", "v": value.value}
    if isinstance(value, OobKind):
        return {"t": "oob-kind", "v": value.value}
    raise TraceFormatError(
        f"instance-key element {value!r} ({type(value).__name__}) has no "
        "trace encoding")


def _key_scalar_from_json(value: object) -> object:
    if isinstance(value, dict):
        try:
            tag, payload = value["t"], value["v"]
        except KeyError as exc:
            raise TraceFormatError(
                f"tagged key element missing field {exc}") from exc
        if tag == "ip":
            return IPv4Address(payload)
        if tag == "mac":
            return MACAddress(payload)
        if tag == "egress-action":
            return EgressAction(payload)
        if tag == "oob-kind":
            return OobKind(payload)
        raise TraceFormatError(f"unknown key element tag {tag!r}")
    return value


def trace_header(**provenance: object) -> dict:
    """A header dict (``seed=``, ``hosts=``, ``packets=``, ``events=``...)
    stamped with the current schema version."""
    header = {"kind": "TraceHeader", "schema": TRACE_SCHEMA_VERSION}
    header.update({k: v for k, v in provenance.items() if v is not None})
    return header


def event_to_dict(event: DataplaneEvent) -> dict:
    """One event as a JSON-serializable dict."""
    base = {"kind": type(event).__name__, "switch": event.switch_id,
            "time": event.time}
    if isinstance(event, PacketArrival):
        base.update(packet=wire_encode(event.packet).hex(),
                    uid=event.packet.uid, in_port=event.in_port)
    elif isinstance(event, PacketEgress):
        base.update(packet=wire_encode(event.packet).hex(),
                    uid=event.packet.uid, in_port=event.in_port,
                    out_port=event.out_port, action=event.action.value)
    elif isinstance(event, PacketDrop):
        base.update(packet=wire_encode(event.packet).hex(),
                    uid=event.packet.uid, in_port=event.in_port,
                    reason=event.reason)
    elif isinstance(event, OutOfBandEvent):
        base.update(oob_kind=event.oob_kind.value, port=event.port)
    elif isinstance(event, TimerFired):
        base.update(timer_id=event.timer_id,
                    instance_key=[_key_scalar_to_json(k)
                                  for k in event.instance_key])
    else:  # pragma: no cover - taxonomy is closed
        raise TraceFormatError(f"unknown event type {type(event).__name__}")
    return base


def event_from_dict(data: dict, max_layer: int = 7) -> DataplaneEvent:
    """Rebuild one event from its dict form."""
    try:
        kind = data["kind"]
        switch_id = data["switch"]
        time = float(data["time"])
    except KeyError as exc:
        raise TraceFormatError(f"trace line missing field {exc}") from exc

    def packet() -> Packet:
        parsed = wire_parse(bytes.fromhex(data["packet"]), max_layer=max_layer)
        return Packet(headers=parsed.headers, payload=parsed.payload,
                      uid=int(data["uid"]))

    if kind == "PacketArrival":
        return PacketArrival(switch_id=switch_id, time=time, packet=packet(),
                             in_port=int(data["in_port"]))
    if kind == "PacketEgress":
        return PacketEgress(
            switch_id=switch_id, time=time, packet=packet(),
            in_port=int(data["in_port"]), out_port=int(data["out_port"]),
            action=EgressAction(data["action"]))
    if kind == "PacketDrop":
        return PacketDrop(switch_id=switch_id, time=time, packet=packet(),
                          in_port=int(data["in_port"]),
                          reason=data.get("reason", ""))
    if kind == "OutOfBandEvent":
        return OutOfBandEvent(switch_id=switch_id, time=time,
                              oob_kind=OobKind(data["oob_kind"]),
                              port=data.get("port"))
    if kind == "TimerFired":
        return TimerFired(switch_id=switch_id, time=time,
                          timer_id=data.get("timer_id", ""),
                          instance_key=tuple(
                              _key_scalar_from_json(k)
                              for k in data.get("instance_key", ())))
    raise TraceFormatError(f"unknown event kind {kind!r}")


def dump_trace(
    events: Iterable[DataplaneEvent],
    fp: IO[str],
    header: Optional[dict] = None,
) -> int:
    """Write events as JSON lines; returns the count written.

    ``header`` (from :func:`trace_header`) is written as the first line
    and is not included in the returned count.
    """
    count = 0
    if header is not None:
        fp.write(json.dumps(header, sort_keys=True))
        fp.write("\n")
    for event in events:
        fp.write(json.dumps(event_to_dict(event), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


def _load(
    fp: IO[str], max_layer: int = 7
) -> Tuple[Optional[dict], List[DataplaneEvent]]:
    header: Optional[dict] = None
    events: List[DataplaneEvent] = []
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if data.get("kind") == "TraceHeader":
            if lineno == 1:
                header = data
                continue
            raise TraceFormatError(
                f"line {lineno}: TraceHeader only allowed on line 1")
        events.append(event_from_dict(data, max_layer=max_layer))
    return header, events


def load_trace(fp: IO[str], max_layer: int = 7) -> List[DataplaneEvent]:
    """Read a JSONL trace; returns events in file order (header skipped)."""
    return _load(fp, max_layer=max_layer)[1]


def save_trace(
    events: Iterable[DataplaneEvent],
    path: str,
    header: Optional[dict] = None,
) -> int:
    with open(path, "w", encoding="utf-8") as fp:
        return dump_trace(events, fp, header=header)


def read_trace(path: str, max_layer: int = 7) -> List[DataplaneEvent]:
    with open(path, "r", encoding="utf-8") as fp:
        return load_trace(fp, max_layer=max_layer)


def read_trace_with_header(
    path: str, max_layer: int = 7
) -> Tuple[Optional[dict], List[DataplaneEvent]]:
    """Like :func:`read_trace` but also returns the header (or ``None``)."""
    with open(path, "r", encoding="utf-8") as fp:
        return _load(fp, max_layer=max_layer)


# ---------------------------------------------------------------------------
# Framed batch encoding


#: Leading bytes of a framed batch — lets a reader reject a JSONL stream
#: (or any other garbage) fed to :func:`decode_frames` immediately.
FRAME_MAGIC = b"RPF1"

_U32 = struct.Struct(">I")


def encode_frames(events: Iterable[DataplaneEvent]) -> bytes:
    """Encode a batch of events as one framed byte string.

    Layout: ``FRAME_MAGIC`` + u32 event count + per event (u32 payload
    length + JSON payload).  The payloads are the same dicts the JSONL
    format writes, so both formats stay round-trip compatible with each
    other.
    """
    frames = []
    for event in events:
        payload = json.dumps(event_to_dict(event), sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        frames.append(_U32.pack(len(payload)))
        frames.append(payload)
    return FRAME_MAGIC + _U32.pack(len(frames) // 2) + b"".join(frames)


def decode_frames(data: bytes, max_layer: int = 7) -> List[DataplaneEvent]:
    """Decode a framed batch produced by :func:`encode_frames`.

    Raises :class:`TraceFormatError` on a bad magic, a truncated frame,
    or trailing bytes after the declared count — a partial IPC read must
    never silently drop events.
    """
    if data[:4] != FRAME_MAGIC:
        raise TraceFormatError(
            f"bad frame magic {data[:4]!r} (expected {FRAME_MAGIC!r})")
    if len(data) < 8:
        raise TraceFormatError("truncated frame header")
    (count,) = _U32.unpack_from(data, 4)
    events: List[DataplaneEvent] = []
    offset = 8
    for index in range(count):
        if offset + 4 > len(data):
            raise TraceFormatError(
                f"truncated batch: frame {index} length missing")
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        if offset + length > len(data):
            raise TraceFormatError(
                f"truncated batch: frame {index} payload short")
        try:
            payload = json.loads(data[offset:offset + length].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"frame {index}: invalid JSON payload: {exc}") from exc
        events.append(event_from_dict(payload, max_layer=max_layer))
        offset += length
    if offset != len(data):
        raise TraceFormatError(
            f"{len(data) - offset} trailing bytes after {count} frames")
    return events
