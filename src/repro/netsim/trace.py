"""Event traces: recording, replay, and inspection.

A :class:`TraceRecorder` is a tap that appends every dataplane event to a
list; tests and benchmarks assert over the recorded sequences, and
:class:`TraceReplayer` feeds a recorded (or synthesized) event stream
directly into a monitor without a live switch — the harness used to
exercise monitor semantics in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Type

from ..switch.events import (
    DataplaneEvent,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)


class TraceRecorder:
    """Tap that records the dataplane event stream in arrival order."""

    def __init__(self) -> None:
        self.events: List[DataplaneEvent] = []

    def __call__(self, event: DataplaneEvent) -> None:
        self.events.append(event)

    def of_kind(self, event_type: Type[DataplaneEvent]) -> List[DataplaneEvent]:
        return [e for e in self.events if isinstance(e, event_type)]

    @property
    def arrivals(self) -> List[PacketArrival]:
        return self.of_kind(PacketArrival)  # type: ignore[return-value]

    @property
    def egresses(self) -> List[PacketEgress]:
        return self.of_kind(PacketEgress)  # type: ignore[return-value]

    @property
    def drops(self) -> List[PacketDrop]:
        return self.of_kind(PacketDrop)  # type: ignore[return-value]

    @property
    def oob(self) -> List[OutOfBandEvent]:
        return self.of_kind(OutOfBandEvent)  # type: ignore[return-value]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DataplaneEvent]:
        return iter(self.events)


class TraceReplayer:
    """Feed a pre-built event sequence into monitor-like consumers."""

    def __init__(self, events: Sequence[DataplaneEvent]) -> None:
        self.events = list(events)
        self._validate()

    def _validate(self) -> None:
        last = float("-inf")
        for event in self.events:
            if event.time < last:
                raise ValueError(
                    f"trace events out of time order at t={event.time}"
                )
            last = event.time

    def replay(self, *sinks: Callable[[DataplaneEvent], None]) -> int:
        """Deliver every event, in order, to each sink.  Returns count."""
        for event in self.events:
            for sink in sinks:
                sink(event)
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)
