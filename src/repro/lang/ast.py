"""Abstract syntax for the property language.

The surface syntax maps one-to-one onto the core IR; the AST keeps source
positions for error reporting and stays independent of the IR so the
elaborator (:mod:`repro.lang.compile`) owns all semantic decisions.

Every node carries a ``line``/``column`` pair (1-based; 0 means "position
unknown", the default for programmatically built nodes).  Positions are
excluded from equality so structural comparisons ignore where a node was
parsed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class VarRef:
    name: str  # without the $
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Literal:
    value: object  # int, float, str, IPv4Address, MACAddress
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


Value = Union[VarRef, Literal]


#: comparison operators carrying an order (everything except == and !=)
ORDERED_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``field <op> value`` for ``==``, ``!=``, or an ordered operator."""

    field: str
    op: str  # "==" | "!=" | "<" | "<=" | ">" | ">="
    value: Value
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class AnyDiffers:
    """``any_differs(f == $x, g == $y)`` — the disjunctive negative match."""

    pairs: Tuple[Tuple[str, Value], ...]
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class NamedPredicate:
    """``@name`` — resolved against the caller's predicate environment."""

    name: str  # without the @
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


Condition = Union[Comparison, AnyDiffers, NamedPredicate]


@dataclass(frozen=True)
class BindAst:
    var: str
    field: str
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class PatternAst:
    """An event pattern: kind plus conditions/binds/modifiers."""

    kind: str  # arrival | egress | drop | oob | packet
    conditions: Tuple[Condition, ...] = ()
    binds: Tuple[BindAst, ...] = ()
    same_packet_as: Optional[str] = None
    action: Optional[str] = None  # unicast | flood
    not_action: Optional[str] = None
    oob_kind: Optional[str] = None  # port_down | port_up | link_down | link_up
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class StageAst:
    """One ``observe`` or ``absent`` clause."""

    negative: bool  # True for absent
    name: str
    pattern: PatternAst
    within: Optional[float] = None
    refresh: Optional[str] = None  # never | on_prior (absent only)
    semantic: bool = False  # absent only: deadline is part of the property
    no_refresh: bool = False  # observe only: stage-0 rematch does not refresh
    unless: Tuple[PatternAst, ...] = ()
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class PropertyAst:
    name: str
    description: str
    key_vars: Tuple[str, ...]
    stages: Tuple[StageAst, ...]
    message: str = ""
    #: "annotate obligation true|false" — pins the F4 judgement (see
    #: PropertySpec.obligation_override)
    obligation: Optional[bool] = None
    #: "annotate instance exact|symmetric|wandering"
    match_kind: Optional[str] = None
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)
