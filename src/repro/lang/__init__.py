"""The property language: a Varanus-flavoured textual surface syntax.

Example::

    property firewall_timed "pinhole return traffic passes"
    key A, B
    observe outbound : arrival
        where @internal
        bind A = ipv4.src, B = ipv4.dst
    observe return_dropped : drop within 30
        where ipv4.src == $B and ipv4.dst == $A
        unless arrival where ipv4.src == $A and ipv4.dst == $B and @tcp_close

Compile with :func:`compile_one` / :func:`compile_source`, supplying named
predicates (``@internal`` above) via a ``{name: Predicate}`` environment.
"""

from .ast import (
    AnyDiffers,
    BindAst,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    VarRef,
)
from .compile import CompileError, compile_ast, compile_one, compile_source
from .format import FormatError, format_property
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_one

__all__ = [
    "AnyDiffers",
    "BindAst",
    "Comparison",
    "Literal",
    "NamedPredicate",
    "PatternAst",
    "PropertyAst",
    "StageAst",
    "VarRef",
    "CompileError",
    "FormatError",
    "format_property",
    "compile_ast",
    "compile_one",
    "compile_source",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse",
    "parse_one",
]
