"""Formatting: core IR specifications back to property-language text.

The inverse of :mod:`repro.lang.compile`: render a
:class:`~repro.core.spec.PropertySpec` as DSL source.  Structural guards
(equality, inequality, ``any_differs``) render directly; opaque
:class:`~repro.core.refs.Predicate` guards cannot be textualized, so the
formatter assigns them fresh ``@p<N>`` names and returns the accompanying
predicate environment — compiling the rendered text with that environment
reproduces the property.

:func:`format_ast` is the *syntactic* sibling: it renders a parsed
:class:`~repro.lang.ast.PropertyAst` back to source without elaborating
first, so ``repro lint --fix`` can rewrite a property file through a
parse → transform → format round-trip (named ``@predicates`` render
by name, no environment needed).  ``parse(format_ast(p))[0] == p``
structurally — AST equality ignores source positions.

``tests/property/test_format_roundtrip.py`` holds the invariant:
``analyze(compile(format(spec))) == analyze(spec)`` for the whole catalog.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import ast as _ast

from ..core.refs import (
    Const,
    EventKind,
    EventPattern,
    FieldCmp,
    FieldEq,
    FieldNe,
    MismatchAny,
    Predicate,
    Var,
)
from ..core.spec import Absent, Observe, PropertySpec
from ..packet.addresses import IPv4Address, MACAddress
from ..switch.events import EgressAction, OobKind

_KIND_TEXT = {
    EventKind.ARRIVAL: "arrival",
    EventKind.EGRESS: "egress",
    EventKind.DROP: "drop",
    EventKind.OOB: "oob",
    EventKind.ANY_PACKET: "packet",
}

_OOB_TEXT = {
    OobKind.PORT_DOWN: "port_down",
    OobKind.PORT_UP: "port_up",
    OobKind.LINK_DOWN: "link_down",
    OobKind.LINK_UP: "link_up",
}

_ACTION_TEXT = {EgressAction.UNICAST: "unicast", EgressAction.FLOOD: "flood"}


class FormatError(ValueError):
    """Raised when a specification cannot be rendered."""


class _Formatter:
    def __init__(self) -> None:
        self.predicates: Dict[str, Predicate] = {}
        self._next_pred = 0

    # -- values ------------------------------------------------------------
    def value(self, ref) -> str:
        if isinstance(ref, Var):
            return f"${ref.name}"
        if not isinstance(ref, Const):
            raise FormatError(f"cannot render value reference {ref!r}")
        v = ref.value
        if isinstance(v, bool):
            raise FormatError("boolean constants are not DSL values")
        if isinstance(v, (IPv4Address,)):
            return str(v)
        if isinstance(v, MACAddress):
            return f'"{v}"'
        if isinstance(v, int):
            return str(v)
        if isinstance(v, float):
            return repr(v)
        if isinstance(v, str):
            return f'"{v}"'
        # Enum-valued constants (e.g. ArpOp) render as their integer value.
        try:
            return str(int(v))
        except (TypeError, ValueError):
            raise FormatError(f"cannot render constant {v!r}") from None

    # -- guards ------------------------------------------------------------------
    def condition(self, guard) -> str:
        if isinstance(guard, FieldEq):
            return f"{guard.field} == {self.value(guard.value)}"
        if isinstance(guard, FieldNe):
            return f"{guard.field} != {self.value(guard.value)}"
        if isinstance(guard, FieldCmp):
            return f"{guard.field} {guard.op} {self.value(guard.value)}"
        if isinstance(guard, MismatchAny):
            pairs = ", ".join(
                f"{field} == {self.value(ref)}" for field, ref in guard.pairs
            )
            return f"any_differs({pairs})"
        if isinstance(guard, Predicate):
            name = f"p{self._next_pred}"
            self._next_pred += 1
            self.predicates[name] = guard
            return f"@{name}"
        raise FormatError(f"cannot render guard {guard!r}")

    # -- patterns -----------------------------------------------------------------
    def pattern_head(self, pattern: EventPattern, extra_mods: str = "") -> str:
        head = _KIND_TEXT[pattern.kind]
        if pattern.oob_kind is not None:
            head += f"({_OOB_TEXT[pattern.oob_kind]})"
        if extra_mods:
            head += f" {extra_mods}"
        if pattern.same_packet_as is not None:
            head += f" samepacket {pattern.same_packet_as}"
        if pattern.egress_action is not None:
            head += f" action {_ACTION_TEXT[pattern.egress_action]}"
        if pattern.not_egress_action is not None:
            head += f" not_action {_ACTION_TEXT[pattern.not_egress_action]}"
        return head

    def where_clause(self, pattern: EventPattern, indent: str) -> List[str]:
        if not pattern.guards:
            return []
        rendered = " and ".join(self.condition(g) for g in pattern.guards)
        return [f"{indent}where {rendered}"]

    def bind_clause(self, pattern: EventPattern, indent: str) -> List[str]:
        if not pattern.binds:
            return []
        rendered = ", ".join(f"{b.var} = {b.field}" for b in pattern.binds)
        return [f"{indent}bind {rendered}"]

    def unless_clauses(self, stage, indent: str) -> List[str]:
        lines = []
        for unless in getattr(stage, "unless", ()):
            head = self.pattern_head(unless)
            conditions = " and ".join(
                self.condition(g) for g in unless.guards
            )
            line = f"{indent}unless {head}"
            if conditions:
                line += f" where {conditions}"
            lines.append(line)
        return lines

    # -- stages -------------------------------------------------------------------
    def stage(self, stage) -> List[str]:
        mods = []
        if isinstance(stage, Absent):
            keyword = "absent"
            mods.append(f"within {_num(stage.within)}")
            if stage.refresh != "never":
                mods.append(f"refresh {stage.refresh}")
            if stage.semantic_deadline:
                mods.append("semantic")
        else:
            keyword = "observe"
            if stage.within is not None:
                mods.append(f"within {_num(stage.within)}")
            if not stage.refresh_on_repeat:
                mods.append("no_refresh")
        head = self.pattern_head(stage.pattern, " ".join(mods))
        lines = [f"{keyword} {stage.name} : {head}"]
        lines += self.where_clause(stage.pattern, "    ")
        lines += self.bind_clause(stage.pattern, "    ")
        lines += self.unless_clauses(stage, "    ")
        return lines


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _ast_value(value: "_ast.Value") -> str:
    if isinstance(value, _ast.VarRef):
        return f"${value.name}"
    v = value.value
    if isinstance(v, bool):
        raise FormatError("boolean constants are not DSL values")
    if isinstance(v, IPv4Address):
        return str(v)
    if isinstance(v, MACAddress):
        return f'"{v}"'
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        return _num(v)
    if isinstance(v, str):
        return f'"{v}"'
    raise FormatError(f"cannot render literal {v!r}")


def _ast_condition(condition: "_ast.Condition") -> str:
    if isinstance(condition, _ast.Comparison):
        return f"{condition.field} {condition.op} {_ast_value(condition.value)}"
    if isinstance(condition, _ast.AnyDiffers):
        pairs = ", ".join(
            f"{field} == {_ast_value(value)}"
            for field, value in condition.pairs)
        return f"any_differs({pairs})"
    if isinstance(condition, _ast.NamedPredicate):
        return f"@{condition.name}"
    raise FormatError(f"cannot render condition {condition!r}")


def _ast_pattern_head(pattern: "_ast.PatternAst", mods: str = "") -> str:
    head = pattern.kind
    if pattern.oob_kind is not None:
        head += f"({pattern.oob_kind})"
    if mods:
        head += f" {mods}"
    if pattern.same_packet_as is not None:
        head += f" samepacket {pattern.same_packet_as}"
    if pattern.action is not None:
        head += f" action {pattern.action}"
    if pattern.not_action is not None:
        head += f" not_action {pattern.not_action}"
    return head


def _ast_stage(stage: "_ast.StageAst") -> List[str]:
    mods = []
    if stage.negative:
        keyword = "absent"
        if stage.within is not None:
            mods.append(f"within {_num(stage.within)}")
        if stage.refresh is not None and stage.refresh != "never":
            mods.append(f"refresh {stage.refresh}")
        if stage.semantic:
            mods.append("semantic")
    else:
        keyword = "observe"
        if stage.within is not None:
            mods.append(f"within {_num(stage.within)}")
        if stage.no_refresh:
            mods.append("no_refresh")
    head = _ast_pattern_head(stage.pattern, " ".join(mods))
    lines = [f"{keyword} {stage.name} : {head}"]
    if stage.pattern.conditions:
        rendered = " and ".join(
            _ast_condition(c) for c in stage.pattern.conditions)
        lines.append(f"    where {rendered}")
    if stage.pattern.binds:
        rendered = ", ".join(
            f"{b.var} = {b.field}" for b in stage.pattern.binds)
        lines.append(f"    bind {rendered}")
    for unless in stage.unless:
        line = f"    unless {_ast_pattern_head(unless)}"
        if unless.conditions:
            rendered = " and ".join(
                _ast_condition(c) for c in unless.conditions)
            line += f" where {rendered}"
        lines.append(line)
    return lines


def format_ast(prop: "_ast.PropertyAst") -> str:
    """Render a parsed property AST back to DSL source.

    Purely syntactic — no elaboration, so it works on properties that do
    not (yet) elaborate, and named predicates render by name.  The result
    re-parses to a structurally equal AST.
    """
    lines = [f'property {prop.name} "{prop.description}"']
    if prop.key_vars:
        lines.append(f"key {', '.join(prop.key_vars)}")
    if prop.message:
        lines.append(f'message "{prop.message}"')
    if prop.obligation is not None:
        lines.append(
            f"annotate obligation {'true' if prop.obligation else 'false'}")
    if prop.match_kind is not None:
        lines.append(f"annotate instance {prop.match_kind}")
    for stage in prop.stages:
        lines.append("")
        lines.extend(_ast_stage(stage))
    return "\n".join(lines) + "\n"


def format_property(prop: PropertySpec) -> Tuple[str, Dict[str, Predicate]]:
    """Render a specification as DSL text.

    Returns ``(source, predicates)``: compile the source with the returned
    predicate environment to reconstruct the property.
    """
    formatter = _Formatter()
    lines = [f'property {prop.name.replace("-", "_")} "{prop.description}"']
    if prop.key_vars:
        lines.append(f"key {', '.join(prop.key_vars)}")
    if prop.violation_message:
        lines.append(f'message "{prop.violation_message}"')
    if prop.obligation_override is not None:
        lines.append(
            f"annotate obligation "
            f"{'true' if prop.obligation_override else 'false'}"
        )
    if prop.match_kind_override is not None:
        lines.append(f"annotate instance {prop.match_kind_override}")
    for stage in prop.stages:
        lines.append("")
        lines.extend(formatter.stage(stage))
    return "\n".join(lines) + "\n", formatter.predicates
