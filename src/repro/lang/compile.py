"""Elaboration: property-language ASTs to core IR specifications."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..core.refs import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldCmp,
    FieldEq,
    FieldNe,
    MismatchAny,
    Predicate,
    Var,
)
from ..core.spec import Absent, Observe, PropertySpec, SpecError
from ..switch.events import EgressAction, OobKind
from .ast import (
    AnyDiffers,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    Value,
    VarRef,
)
from .parser import parse, parse_one


class CompileError(ValueError):
    """Raised when an AST cannot be elaborated.

    Carries the offending AST node's source position (1-based ``line`` /
    ``column``; 0 when the AST was built programmatically and has no
    position).  The position is baked into the message so bare ``str()``
    renderings — the CLI's error path — point at the source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


_KIND_MAP = {
    "arrival": EventKind.ARRIVAL,
    "egress": EventKind.EGRESS,
    "drop": EventKind.DROP,
    "oob": EventKind.OOB,
    "packet": EventKind.ANY_PACKET,
}

_OOB_MAP = {
    "port_down": OobKind.PORT_DOWN,
    "port_up": OobKind.PORT_UP,
    "link_down": OobKind.LINK_DOWN,
    "link_up": OobKind.LINK_UP,
}

_ACTION_MAP = {"unicast": EgressAction.UNICAST, "flood": EgressAction.FLOOD}

PredicateEnv = Mapping[str, Predicate]


def _value(value: Value):
    if isinstance(value, VarRef):
        return Var(value.name)
    return Const(value.value)


def _pattern(ast: PatternAst, predicates: PredicateEnv) -> EventPattern:
    guards = []
    for condition in ast.conditions:
        if isinstance(condition, Comparison):
            ref = _value(condition.value)
            if condition.op == "==":
                guards.append(FieldEq(condition.field, ref))
            elif condition.op == "!=":
                guards.append(FieldNe(condition.field, ref))
            else:
                guards.append(FieldCmp(condition.field, condition.op, ref))
        elif isinstance(condition, AnyDiffers):
            guards.append(
                MismatchAny(
                    tuple((field, _value(v)) for field, v in condition.pairs)
                )
            )
        elif isinstance(condition, NamedPredicate):
            if condition.name not in predicates:
                raise CompileError(
                    f"unknown predicate @{condition.name} (available: "
                    f"{sorted(predicates)})",
                    line=condition.line, column=condition.column,
                )
            guards.append(predicates[condition.name])
        else:  # pragma: no cover - AST is closed
            raise CompileError(f"unknown condition {condition!r}")
    return EventPattern(
        kind=_KIND_MAP[ast.kind],
        guards=tuple(guards),
        binds=tuple(Bind(b.var, b.field) for b in ast.binds),
        same_packet_as=ast.same_packet_as,
        egress_action=_ACTION_MAP.get(ast.action) if ast.action else None,
        not_egress_action=_ACTION_MAP.get(ast.not_action) if ast.not_action else None,
        oob_kind=_OOB_MAP.get(ast.oob_kind) if ast.oob_kind else None,
    )


def _stage(ast: StageAst, predicates: PredicateEnv):
    pattern = _pattern(ast.pattern, predicates)
    unless = tuple(_pattern(u, predicates) for u in ast.unless)
    if ast.negative:
        if ast.within is None:
            raise CompileError(f"absent stage {ast.name!r} needs `within`",
                               line=ast.line, column=ast.column)
        return Absent(
            name=ast.name,
            pattern=pattern,
            within=ast.within,
            refresh=ast.refresh or "never",
            semantic_deadline=ast.semantic,
            unless=unless,
        )
    if ast.refresh is not None:
        raise CompileError(
            f"observe stage {ast.name!r}: `refresh` applies to absent stages",
            line=ast.line, column=ast.column,
        )
    return Observe(
        name=ast.name,
        pattern=pattern,
        within=ast.within,
        unless=unless,
        refresh_on_repeat=not ast.no_refresh,
    )


def compile_ast(
    ast: PropertyAst, predicates: Optional[PredicateEnv] = None
) -> PropertySpec:
    """Elaborate one parsed property to a monitor-ready specification."""
    env = dict(predicates or {})
    try:
        return PropertySpec(
            name=ast.name,
            description=ast.description,
            stages=tuple(_stage(s, env) for s in ast.stages),
            key_vars=ast.key_vars,
            violation_message=ast.message,
            obligation_override=ast.obligation,
            match_kind_override=ast.match_kind,
        )
    except SpecError as exc:
        # Structural spec errors surface at the property header: the IR
        # has no positions of its own, but the AST we elaborated from does.
        raise CompileError(str(exc), line=ast.line, column=ast.column) from exc


def compile_source(
    source: str, predicates: Optional[PredicateEnv] = None
) -> Tuple[PropertySpec, ...]:
    """Parse and elaborate property-language source (possibly several
    properties) into specifications."""
    return tuple(compile_ast(ast, predicates) for ast in parse(source))


def compile_one(
    source: str, predicates: Optional[PredicateEnv] = None
) -> PropertySpec:
    """Parse and elaborate source containing exactly one property."""
    return compile_ast(parse_one(source), predicates)
