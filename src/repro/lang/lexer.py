"""Tokenizer for the property language.

The language is a small Varanus-flavoured surface syntax for
:class:`~repro.core.spec.PropertySpec`.  Token kinds:

* ``IDENT``   — bare identifiers and keywords (``observe``, ``where``, …);
* ``FIELD``   — dotted names (``ipv4.src``);
* ``VAR``     — ``$``-prefixed variables (``$A``);
* ``PRED``    — ``@``-prefixed named predicates (``@internal``);
* ``NUMBER``  — integers and floats;
* ``IP``      — dotted-quad literals (``10.0.0.1``);
* ``STRING``  — double-quoted strings;
* punctuation — ``:`` ``,`` ``(`` ``)`` ``==`` ``!=`` ``<=`` ``>=``
  ``<`` ``>`` ``=``.

Comments run from ``#`` to end of line.  Newlines are insignificant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple


class LexError(ValueError):
    """Raised on unrecognized input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_TOKEN_SPEC: Tuple[Tuple[str, str], ...] = (
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("IP", r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}"),
    ("NUMBER", r"\d+(?:\.\d+)?"),
    ("FIELD", r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("VAR", r"\$[A-Za-z_][A-Za-z0-9_]*"),
    ("PRED", r"@[A-Za-z_][A-Za-z0-9_]*"),
    ("EQ", r"=="),
    ("NE", r"!="),
    ("LE", r"<="),  # two-char ordered ops before their one-char prefixes
    ("GE", r">="),
    ("LT", r"<"),
    ("GT", r">"),
    ("ASSIGN", r"="),
    ("COLON", r":"),
    ("COMMA", r","),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
)

_MASTER = re.compile("|".join(f"(?P<{kind}>{pattern})" for kind, pattern in _TOKEN_SPEC))


def tokenize(source: str) -> List[Token]:
    """Tokenize a property-language source string."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _MASTER.match(source, pos)
        if match is None:
            raise LexError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        text = match.group()
        column = pos - line_start + 1
        if kind == "WS":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rfind("\n") + 1
        elif kind == "COMMENT":
            pass
        elif kind == "STRING":
            tokens.append(Token("STRING", text[1:-1], line, column))
        else:
            tokens.append(Token(kind, text, line, column))
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens
