"""Recursive-descent parser for the property language.

Grammar (EBNF, newline-insensitive)::

    property   := "property" IDENT [STRING]
                  ["key" IDENT ("," IDENT)*]
                  ["message" STRING]
                  stage+
    stage      := ("observe" | "absent") IDENT ":" kind modifier*
                  clause*
    kind       := "arrival" | "egress" | "drop" | "packet"
                | "oob" ["(" IDENT ")"]
    modifier   := "within" NUMBER
                | "refresh" ("never" | "on_prior")
                | "semantic"
                | "no_refresh"
                | "samepacket" IDENT
                | "action" ("unicast" | "flood")
                | "not_action" ("unicast" | "flood")
    clause     := "where" condition ("and" condition)*
                | "bind" binding ("," binding)*
                | "unless" kind modifier* ["where" condition ("and" condition)*]
    condition  := FIELD ("==" | "!=" | "<" | "<=" | ">" | ">=") value
                | "any_differs" "(" FIELD "==" value ("," FIELD "==" value)* ")"
                | PRED
    binding    := IDENT "=" FIELD
    value      := VAR | NUMBER | IP | STRING

A file may contain several properties; :func:`parse` returns them all.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..packet.addresses import IPv4Address, MACAddress
from .ast import (
    AnyDiffers,
    BindAst,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    Value,
    VarRef,
)
from .lexer import Token, tokenize

_KINDS = ("arrival", "egress", "drop", "oob", "packet")
_OOB_KINDS = ("port_down", "port_up", "link_down", "link_up")
_ACTIONS = ("unicast", "flood")

_MAC_LIKE = __import__("re").compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")

_COMPARISON_OPS = {
    "EQ": "==", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">=",
}


class ParseError(ValueError):
    """Raised on syntactically invalid property text."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line} (near {token.value!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want}", token)
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "IDENT" and token.value in words

    # -- grammar ---------------------------------------------------------------
    def parse_file(self) -> List[PropertyAst]:
        props = []
        while self.peek().kind != "EOF":
            props.append(self.parse_property())
        if not props:
            raise ParseError("empty property file", self.peek())
        return props

    def parse_property(self) -> PropertyAst:
        header = self.expect("IDENT", "property")
        name = self.expect("IDENT").value
        description = ""
        if self.peek().kind == "STRING":
            description = self.advance().value
        key_vars: Tuple[str, ...] = ()
        message = ""
        obligation = None
        match_kind = None
        while self.at_keyword("key", "message", "annotate"):
            word = self.advance().value
            if word == "key":
                names = [self.expect("IDENT").value]
                while self.accept("COMMA"):
                    names.append(self.expect("IDENT").value)
                key_vars = tuple(names)
            elif word == "message":
                message = self.expect("STRING").value
            else:  # annotate
                what = self.expect("IDENT")
                if what.value == "obligation":
                    flag = self.expect("IDENT")
                    if flag.value not in ("true", "false"):
                        raise ParseError("obligation must be true or false",
                                         flag)
                    obligation = flag.value == "true"
                elif what.value == "instance":
                    kind = self.expect("IDENT")
                    if kind.value not in ("exact", "symmetric", "wandering"):
                        raise ParseError("unknown instance kind", kind)
                    match_kind = kind.value
                else:
                    raise ParseError(
                        "annotate takes 'obligation' or 'instance'", what)
        stages = []
        while self.at_keyword("observe", "absent"):
            stages.append(self.parse_stage())
        if not stages:
            raise ParseError(f"property {name!r} has no stages", self.peek())
        return PropertyAst(
            name=name,
            description=description or name,
            key_vars=key_vars,
            stages=tuple(stages),
            message=message,
            obligation=obligation,
            match_kind=match_kind,
            line=header.line,
            column=header.column,
        )

    def parse_stage(self) -> StageAst:
        opener = self.expect("IDENT")
        negative = opener.value == "absent"
        name = self.expect("IDENT").value
        self.expect("COLON")
        pattern, within, refresh, semantic, no_refresh = self.parse_pattern_head()
        conditions: Tuple = ()
        binds: Tuple = ()
        unless: List[PatternAst] = []
        while self.at_keyword("where", "bind", "unless"):
            word = self.advance().value
            if word == "where":
                conditions = conditions + self.parse_conditions()
            elif word == "bind":
                binds = binds + self.parse_bindings()
            else:
                unless.append(self.parse_unless_pattern())
        pattern = PatternAst(
            kind=pattern.kind,
            conditions=conditions,
            binds=binds,
            same_packet_as=pattern.same_packet_as,
            action=pattern.action,
            not_action=pattern.not_action,
            oob_kind=pattern.oob_kind,
            line=pattern.line,
            column=pattern.column,
        )
        return StageAst(
            negative=negative,
            name=name,
            pattern=pattern,
            within=within,
            refresh=refresh,
            semantic=semantic,
            no_refresh=no_refresh,
            unless=tuple(unless),
            line=opener.line,
            column=opener.column,
        )

    def parse_pattern_head(self):
        """kind + modifiers (shared by stages and unless patterns)."""
        kind_token = self.expect("IDENT")
        if kind_token.value not in _KINDS:
            raise ParseError(f"unknown event kind {kind_token.value!r}", kind_token)
        kind = kind_token.value
        oob_kind = None
        if kind == "oob" and self.accept("LPAREN"):
            oob = self.expect("IDENT")
            if oob.value not in _OOB_KINDS:
                raise ParseError(f"unknown oob kind {oob.value!r}", oob)
            oob_kind = oob.value
            self.expect("RPAREN")
        within: Optional[float] = None
        refresh: Optional[str] = None
        semantic = False
        no_refresh = False
        same_packet: Optional[str] = None
        action: Optional[str] = None
        not_action: Optional[str] = None
        while self.at_keyword(
            "within", "refresh", "semantic", "no_refresh", "samepacket",
            "action", "not_action",
        ):
            word = self.advance().value
            if word == "within":
                within = float(self.expect("NUMBER").value)
            elif word == "refresh":
                token = self.expect("IDENT")
                if token.value not in ("never", "on_prior"):
                    raise ParseError("refresh must be never or on_prior", token)
                refresh = token.value
            elif word == "semantic":
                semantic = True
            elif word == "no_refresh":
                no_refresh = True
            elif word == "samepacket":
                same_packet = self.expect("IDENT").value
            elif word in ("action", "not_action"):
                token = self.expect("IDENT")
                if token.value not in _ACTIONS:
                    raise ParseError("action must be unicast or flood", token)
                if word == "action":
                    action = token.value
                else:
                    not_action = token.value
        pattern = PatternAst(
            kind=kind,
            same_packet_as=same_packet,
            action=action,
            not_action=not_action,
            oob_kind=oob_kind,
            line=kind_token.line,
            column=kind_token.column,
        )
        return pattern, within, refresh, semantic, no_refresh

    def parse_unless_pattern(self) -> PatternAst:
        pattern, within, refresh, semantic, no_refresh = self.parse_pattern_head()
        if within is not None or refresh is not None or semantic or no_refresh:
            raise ParseError("unless patterns take no timing modifiers", self.peek())
        conditions: Tuple = ()
        if self.at_keyword("where"):
            self.advance()
            conditions = self.parse_conditions()
        return PatternAst(
            kind=pattern.kind,
            conditions=conditions,
            same_packet_as=pattern.same_packet_as,
            action=pattern.action,
            not_action=pattern.not_action,
            oob_kind=pattern.oob_kind,
            line=pattern.line,
            column=pattern.column,
        )

    def parse_conditions(self) -> Tuple:
        conditions = [self.parse_condition()]
        while self.at_keyword("and"):
            self.advance()
            conditions.append(self.parse_condition())
        return tuple(conditions)

    def parse_condition(self):
        token = self.peek()
        if token.kind == "PRED":
            self.advance()
            return NamedPredicate(token.value[1:], line=token.line,
                                  column=token.column)
        if token.kind == "IDENT" and token.value == "any_differs":
            self.advance()
            self.expect("LPAREN")
            pairs = [self.parse_differ_pair()]
            while self.accept("COMMA"):
                pairs.append(self.parse_differ_pair())
            self.expect("RPAREN")
            return AnyDiffers(tuple(pairs), line=token.line,
                              column=token.column)
        field = self.parse_field_name()
        op_token = self.peek()
        op = _COMPARISON_OPS.get(op_token.kind)
        if op is None:
            raise ParseError(
                "expected a comparison operator (==, !=, <, <=, >, >=)",
                op_token)
        self.advance()
        return Comparison(field=field, op=op, value=self.parse_value(),
                          line=token.line, column=token.column)

    def parse_differ_pair(self) -> Tuple[str, Value]:
        field = self.parse_field_name()
        self.expect("EQ")
        return field, self.parse_value()

    def parse_field_name(self) -> str:
        token = self.peek()
        if token.kind in ("FIELD", "IDENT"):
            self.advance()
            return token.value
        raise ParseError("expected a field name", token)

    def parse_bindings(self) -> Tuple[BindAst, ...]:
        binds = [self.parse_binding()]
        while self.accept("COMMA"):
            binds.append(self.parse_binding())
        return tuple(binds)

    def parse_binding(self) -> BindAst:
        var_token = self.expect("IDENT")
        self.expect("ASSIGN")
        return BindAst(var=var_token.value, field=self.parse_field_name(),
                       line=var_token.line, column=var_token.column)

    def parse_value(self) -> Value:
        token = self.peek()
        if token.kind == "VAR":
            self.advance()
            return VarRef(token.value[1:], line=token.line,
                          column=token.column)
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text),
                           line=token.line, column=token.column)
        if token.kind == "IP":
            self.advance()
            return Literal(IPv4Address(token.value), line=token.line,
                           column=token.column)
        if token.kind == "STRING":
            self.advance()
            if _MAC_LIKE.match(token.value):
                return Literal(MACAddress(token.value), line=token.line,
                               column=token.column)
            return Literal(token.value, line=token.line, column=token.column)
        raise ParseError("expected a value", token)


def parse(source: str) -> List[PropertyAst]:
    """Parse property-language source into ASTs (one per property)."""
    return _Parser(tokenize(source)).parse_file()


def parse_one(source: str) -> PropertyAst:
    """Parse source expected to contain exactly one property."""
    props = parse(source)
    if len(props) != 1:
        raise ParseError(
            f"expected exactly one property, found {len(props)}",
            Token("EOF", "", 0, 0),
        )
    return props[0]
