"""Declarative flow-table actions, interpreted by the pipeline.

The action set covers what the surveyed architectures provide:

* classic OpenFlow forwarding: :class:`Output`, :class:`Flood`,
  :class:`Drop`, :class:`ToController`, :class:`SetField`, :class:`GotoTable`;
* the Open vSwitch ``learn`` action (FAST's substrate): :class:`Learn`
  installs a new rule whose match/actions are built from the triggering
  packet's fields — this is a **slow-path** state update in the paper's
  Table 2 taxonomy;
* register writes (P4/POF-style **fast-path** state): :class:`RegisterWrite`.

:class:`Learn` templates may carry ``on_timeout`` actions and may
recursively contain further :class:`Learn` actions — the Varanus extensions
("recursive learn", "timeout actions") that standard OVS lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from .match import MatchSpec


@dataclass(frozen=True)
class Action:
    """Marker base class for all actions."""


@dataclass(frozen=True)
class Output(Action):
    """Unicast out one port.

    Inside a :class:`Learn` template, ``port`` may be a :class:`FieldRef`
    (e.g. ``FieldRef("in_port")`` — MAC learning's "send future packets to
    the port this source arrived on"), resolved when the learn fires.
    """

    port: object  # int, or FieldRef/Deferred inside a Learn template


@dataclass(frozen=True)
class Flood(Action):
    """Send out every port except the ingress port."""


@dataclass(frozen=True)
class Drop(Action):
    """Explicitly discard the packet."""

    reason: str = "drop-action"


@dataclass(frozen=True)
class ToController(Action):
    """Punt to the controller (packet-in)."""

    reason: str = "packet-in"


@dataclass(frozen=True)
class SetField(Action):
    """Rewrite one dotted header field before output."""

    name: str
    value: object


@dataclass(frozen=True)
class GotoTable(Action):
    """Continue matching at a later pipeline table (ids must increase)."""

    table_id: int


@dataclass(frozen=True)
class FieldRef:
    """A deferred reference to a field of the *triggering* packet.

    Learn templates use these where the installed rule should carry a value
    copied from the packet that fired the learn — e.g.
    ``MatchTemplate(("eth.dst", FieldRef("eth.src")))`` implements MAC
    learning's "future packets TO this source".
    """

    name: str

    def resolve(self, fields: Mapping[str, object]) -> object:
        if self.name not in fields:
            raise KeyError(f"learn template references absent field {self.name!r}")
        return fields[self.name]


@dataclass(frozen=True)
class Deferred:
    """Delay resolution of a template value by one learn level.

    Recursive learn (Varanus) installs rules that themselves learn: a field
    the *inner* rule should copy from *its own* triggering packet must not
    be resolved when the outer learn fires.  ``Deferred(FieldRef(n))``
    unwraps to ``FieldRef(n)`` at the outer resolution, which then resolves
    normally when the inner rule fires.  Deferred nests arbitrarily deep.
    """

    inner: "TemplateValue"


TemplateValue = Union[object, FieldRef, Deferred]


def resolve_value(value: TemplateValue, fields: Mapping[str, object]) -> object:
    if isinstance(value, Deferred):
        return value.inner
    return value.resolve(fields) if isinstance(value, FieldRef) else value


@dataclass(frozen=True)
class Learn(Action):
    """Install a rule derived from the triggering packet (OVS ``learn``).

    * ``table_id``/``priority`` place the new rule;
    * ``match`` maps dotted field names to constants or :class:`FieldRef`;
    * ``negate`` lists match fields to install as *negative* predicates;
    * ``actions`` are the installed rule's actions (values inside
      ``SetField`` may be :class:`FieldRef`, resolved at learn time);
    * ``idle_timeout``/``hard_timeout`` expire the installed rule;
    * ``on_timeout`` — Varanus extension — actions executed when the
      installed rule's timer fires (Feature 7), instead of silent expiry;
    * nested :class:`Learn` inside ``actions`` is the Varanus "recursive
      learn" used to unroll monitor instances into new tables.
    """

    table_id: int
    match: Tuple[Tuple[str, TemplateValue], ...]
    actions: Tuple[Action, ...]
    priority: int = 100
    negate: Tuple[str, ...] = ()
    idle_timeout: Optional[float] = None
    hard_timeout: Optional[float] = None
    on_timeout: Tuple[Action, ...] = ()
    cookie: str = ""
    #: fields of the triggering packet whose values are appended to the
    #: cookie at learn time ("per-key cookies") — how Varanus names the
    #: rules belonging to one instance so they can be deleted together.
    cookie_fields: Tuple[str, ...] = ()
    #: companion rules installed into the SAME resolved target table (their
    #: own table_id is ignored) — how Varanus lands a timer rule and its
    #: discharge watcher in one freshly-unrolled instance table together.
    extra: Tuple["Learn", ...] = ()

    def build_match(self, fields: Mapping[str, object]) -> MatchSpec:
        """Instantiate the match template against the triggering packet."""
        spec = MatchSpec()
        for name, template in self.match:
            value = resolve_value(template, fields)
            if name in self.negate:
                spec = spec.neq(name, value)
            else:
                spec = spec.eq(name, value)
        return spec

    def build_actions(self, fields: Mapping[str, object]) -> Tuple[Action, ...]:
        """Resolve FieldRefs inside the installed rule's actions."""
        return tuple(_resolve_action(a, fields) for a in self.actions)

    def build_timeout_actions(self, fields: Mapping[str, object]) -> Tuple[Action, ...]:
        return tuple(_resolve_action(a, fields) for a in self.on_timeout)


@dataclass(frozen=True)
class RegisterWrite(Action):
    """Write a value into a named register array (fast-path state).

    ``index`` and ``value`` may be :class:`FieldRef`, resolved against the
    triggering packet; integer-convertible values are stored as ints.
    """

    array: str
    index: TemplateValue
    value: TemplateValue


@dataclass(frozen=True)
class DeleteRules(Action):
    """Remove all rules carrying ``cookie`` (Varanus extension).

    ``table_id`` limits the deletion to one table; ``-2`` means the table
    of the rule executing this action; ``None`` means every table.  Stock
    OpenFlow can only delete rules from the controller — on-switch
    deletion triggered by a packet match is one of the custom extensions
    the Varanus prototype added, used here to discharge negative
    observations and cancel unrolled monitor instances.
    """

    cookie: str
    table_id: Optional[int] = None
    #: fields of the triggering packet appended to the cookie at fire time,
    #: mirroring Learn.cookie_fields — deletes exactly one key's rules.
    cookie_fields: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Notify(Action):
    """Emit a monitor alert (violation notification) from the dataplane.

    ``carry`` names fields of the triggering packet to include in the
    alert — the paper's "limited provenance recovered without added cost"
    (Feature 10): values already held for matching ride along for free.
    ``baked`` holds values resolved at learn time: a Notify installed by a
    learn action (notably as an ``on_timeout`` action, where no packet
    exists when it fires) captures the triggering packet's fields then.
    """

    message: str
    carry: Tuple[str, ...] = ()
    baked: Tuple[Tuple[str, object], ...] = ()


def keyed_cookie(
    cookie: str, cookie_fields: Tuple[str, ...], fields: Mapping[str, object]
) -> str:
    """Append the values of ``cookie_fields`` to ``cookie`` (per-key naming)."""
    if not cookie_fields:
        return cookie
    suffix = "|".join(str(fields.get(name, "?")) for name in cookie_fields)
    return f"{cookie}|{suffix}"


def _resolve_action(action: Action, fields: Mapping[str, object]) -> Action:
    """Resolve one learn level of FieldRefs inside an installed action."""
    if isinstance(action, Output) and isinstance(action.port, (FieldRef, Deferred)):
        return Output(port=resolve_value(action.port, fields))
    if isinstance(action, Notify) and action.carry:
        # Bake the carried values now: the installed rule (or its timeout)
        # may fire with no packet context to read them from.
        return Notify(
            message=action.message,
            carry=action.carry,
            baked=action.baked + tuple(
                (name, fields[name]) for name in action.carry
                if name in fields
            ),
        )
    if isinstance(action, SetField) and isinstance(action.value, (FieldRef, Deferred)):
        return SetField(name=action.name, value=resolve_value(action.value, fields))
    if isinstance(action, RegisterWrite):
        return RegisterWrite(
            array=action.array,
            index=resolve_value(action.index, fields),
            value=resolve_value(action.value, fields),
        )
    if isinstance(action, Learn):
        # Recursive learn (Varanus): resolve this level's references now;
        # Deferred values unwrap by one level and bind when the installed
        # rule's own learn fires.
        resolved_match = tuple(
            (name, resolve_value(value, fields)) for name, value in action.match
        )
        return Learn(
            table_id=action.table_id,
            match=resolved_match,
            actions=tuple(_resolve_action(a, fields) for a in action.actions),
            priority=action.priority,
            negate=action.negate,
            idle_timeout=action.idle_timeout,
            hard_timeout=action.hard_timeout,
            on_timeout=tuple(_resolve_action(a, fields) for a in action.on_timeout),
            cookie=action.cookie,
            extra=tuple(_resolve_action(e, fields) for e in action.extra),
        )
    return action
