"""Flow-table match predicates.

A :class:`MatchSpec` is a conjunction of per-field predicates over the
packet's dotted field namespace plus pipeline metadata (``in_port``,
``reg.*`` registers, and — in egress tables — ``out_port``).  Predicates
support exact values, ternary masks over integer fields, and **negative
match** (Feature 6): "field is NOT equal to value", which the NAT property's
final observation needs and which the paper notes all surveyed approaches do
support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.packet import Packet

FieldValue = Union[int, str, MACAddress, IPv4Address]


def _canonical(value: object) -> object:
    """Normalize values so MACAddress(1) == matches written as ints, etc."""
    return value


@dataclass(frozen=True)
class FieldPredicate:
    """One field's predicate: exact, masked, or negated-exact."""

    name: str
    value: object
    mask: Optional[int] = None
    negate: bool = False

    def __post_init__(self) -> None:
        if self.mask is not None and self.negate:
            raise ValueError("masked and negated predicates cannot combine")

    def matches(self, actual: object) -> bool:
        if self.mask is not None:
            try:
                return (int(actual) & self.mask) == (int(self.value) & self.mask)
            except (TypeError, ValueError):
                return False
        equal = actual == self.value
        return not equal if self.negate else equal

    def describe(self) -> str:
        if self.mask is not None:
            return f"{self.name}&{self.mask:#x}=={int(self.value) & self.mask:#x}"
        op = "!=" if self.negate else "=="
        return f"{self.name}{op}{self.value}"


class MatchSpec:
    """A conjunction of field predicates.

    >>> spec = MatchSpec(in_port=1).eq("ipv4.src", IPv4Address("10.0.0.1"))
    >>> spec.matches_fields({"in_port": 1, "ipv4.src": IPv4Address("10.0.0.1")})
    True
    """

    __slots__ = ("_predicates", "in_port", "out_port")

    def __init__(
        self,
        in_port: Optional[int] = None,
        out_port: Optional[int] = None,
        **exact: object,
    ) -> None:
        self.in_port = in_port
        self.out_port = out_port
        self._predicates: Tuple[FieldPredicate, ...] = tuple(
            FieldPredicate(name=name.replace("__", "."), value=_canonical(value))
            for name, value in sorted(exact.items())
        )

    # -- fluent construction ---------------------------------------------
    def _extended(self, predicate: FieldPredicate) -> "MatchSpec":
        clone = MatchSpec(in_port=self.in_port, out_port=self.out_port)
        clone._predicates = self._predicates + (predicate,)
        return clone

    def eq(self, name: str, value: object) -> "MatchSpec":
        """Add an exact-match predicate on dotted field ``name``."""
        return self._extended(FieldPredicate(name=name, value=_canonical(value)))

    def neq(self, name: str, value: object) -> "MatchSpec":
        """Add a negative-match predicate (Feature 6)."""
        return self._extended(
            FieldPredicate(name=name, value=_canonical(value), negate=True)
        )

    def masked(self, name: str, value: int, mask: int) -> "MatchSpec":
        """Add a ternary masked predicate over an integer field."""
        return self._extended(FieldPredicate(name=name, value=value, mask=mask))

    # -- evaluation ---------------------------------------------------------
    @property
    def predicates(self) -> Tuple[FieldPredicate, ...]:
        return self._predicates

    @property
    def has_negation(self) -> bool:
        return any(p.negate for p in self._predicates)

    def field_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._predicates)

    def matches_fields(self, fields: Mapping[str, object]) -> bool:
        """Evaluate against a flat field map (packet fields + metadata)."""
        if self.in_port is not None and fields.get("in_port") != self.in_port:
            return False
        if self.out_port is not None and fields.get("out_port") != self.out_port:
            return False
        for predicate in self._predicates:
            if predicate.name not in fields:
                # Absent field: negative predicates vacuously hold (the
                # field cannot equal the forbidden value), positives fail.
                if not predicate.negate:
                    return False
                continue
            if not predicate.matches(fields[predicate.name]):
                return False
        return True

    def matches_packet(
        self,
        packet: Packet,
        in_port: Optional[int] = None,
        max_layer: int = 7,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> bool:
        """Evaluate against a packet plus pipeline metadata."""
        fields: Dict[str, object] = dict(packet.fields(max_layer=max_layer))
        if in_port is not None:
            fields["in_port"] = in_port
        if metadata:
            fields.update(metadata)
        return self.matches_fields(fields)

    # -- misc ---------------------------------------------------------------
    def describe(self) -> str:
        parts = []
        if self.in_port is not None:
            parts.append(f"in_port=={self.in_port}")
        if self.out_port is not None:
            parts.append(f"out_port=={self.out_port}")
        parts.extend(p.describe() for p in self._predicates)
        return " AND ".join(parts) if parts else "ANY"

    def __repr__(self) -> str:
        return f"MatchSpec({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchSpec):
            return NotImplemented
        return (
            self.in_port == other.in_port
            and self.out_port == other.out_port
            and self._predicates == other._predicates
        )

    def __hash__(self) -> int:
        return hash((self.in_port, self.out_port, self._predicates))


ANY = MatchSpec()
