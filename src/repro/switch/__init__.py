"""Software switch dataplane: matching, actions, tables, pipeline, events.

The switch is the substrate the paper assumes: a match-action pipeline with
pluggable state primitives, an egress stage, drop visibility, out-of-band
events, learn actions (with the Varanus recursive/timeout extensions), and
register state — everything the monitoring backends in
:mod:`repro.backends` compile onto.
"""

from .actions import (
    Action,
    Deferred,
    Drop,
    FieldRef,
    Flood,
    GotoTable,
    Learn,
    Notify,
    Output,
    RegisterWrite,
    SetField,
    ToController,
)
from .events import (
    DataplaneEvent,
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)
from .match import ANY, FieldPredicate, MatchSpec
from .pipeline import Alert, MissPolicy, Pipeline, PipelineError, PipelineResult, StateUpdate
from .registers import (
    FAST_PATH_UPDATE_COST,
    SLOW_PATH_UPDATE_COST,
    TABLE_LOOKUP_COST,
    GlobalArrays,
    RegisterArray,
    StateCostMeter,
)
from .rewrite import RewriteError, rewritable_fields, rewrite_field
from .switch import (
    BASE_FORWARD_LATENCY,
    TICK_SECONDS,
    ProcessingMode,
    Switch,
    SwitchApp,
    SwitchStats,
)
from .tables import ExpiredRule, FlowRule, FlowTable

__all__ = [
    "Action",
    "Deferred",
    "Drop",
    "FieldRef",
    "Flood",
    "GotoTable",
    "Learn",
    "Notify",
    "Output",
    "RegisterWrite",
    "SetField",
    "ToController",
    "DataplaneEvent",
    "EgressAction",
    "OobKind",
    "OutOfBandEvent",
    "PacketArrival",
    "PacketDrop",
    "PacketEgress",
    "TimerFired",
    "ANY",
    "FieldPredicate",
    "MatchSpec",
    "Alert",
    "MissPolicy",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "StateUpdate",
    "FAST_PATH_UPDATE_COST",
    "SLOW_PATH_UPDATE_COST",
    "TABLE_LOOKUP_COST",
    "GlobalArrays",
    "RegisterArray",
    "StateCostMeter",
    "RewriteError",
    "rewritable_fields",
    "rewrite_field",
    "BASE_FORWARD_LATENCY",
    "TICK_SECONDS",
    "ProcessingMode",
    "Switch",
    "SwitchApp",
    "SwitchStats",
    "ExpiredRule",
    "FlowRule",
    "FlowTable",
]
