"""Dataplane event taxonomy.

These events are what a monitor *observes* (the paper's notion of
"observation", Sec. 2).  The switch emits them at well-defined points:

* :class:`PacketArrival` — a packet entered an ingress port;
* :class:`PacketEgress` — a (possibly rewritten) packet left an output port;
* :class:`PacketDrop`   — the pipeline decided to drop.  The paper stresses
  (Feature 5 discussion, Sec. 3.2) that drop visibility is "almost
  universally unsupported": in OpenFlow 1.5, dropped packets never enter
  the egress pipeline.  Our ideal switch reports drops; backend models can
  turn that tap off to reproduce the gap.
* :class:`OutOfBandEvent` — non-packet events such as link-down (the
  multiple-match example of Feature 8);
* :class:`TimerFired` — a monitor-owned timer elapsed (Feature 7's timeout
  actions observe these).

Every event carries the emitting switch's id and a virtual timestamp, and
packet events carry the packet ``uid`` so identity (Feature 5) survives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..packet.packet import Packet

_event_seq = itertools.count(1)


def _next_event_seq() -> int:
    return next(_event_seq)


class EgressAction(Enum):
    """What the pipeline decided to do with a packet."""

    UNICAST = "unicast"
    FLOOD = "flood"
    DROP = "drop"
    CONTROLLER = "controller"


@dataclass(frozen=True)
class DataplaneEvent:
    """Base class: common identity/ordering fields for all events."""

    switch_id: str
    time: float
    seq: int = field(default_factory=_next_event_seq)

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class PacketArrival(DataplaneEvent):
    """A packet arrived on ``in_port``, before any pipeline processing."""

    packet: Packet = None  # type: ignore[assignment]
    in_port: int = 0

    def __post_init__(self) -> None:
        if self.packet is None:
            raise ValueError("PacketArrival requires a packet")


@dataclass(frozen=True)
class PacketEgress(DataplaneEvent):
    """A packet left the switch.

    ``packet`` is the egress copy (post-rewrite, e.g. after NAT); it shares
    its ``uid`` with the arrival it came from.  ``action`` distinguishes
    unicast from flood — matching on the *switch's own output decision* is
    the metadata-match capability the paper calls out as a critical gap.
    """

    packet: Packet = None  # type: ignore[assignment]
    out_port: int = 0
    in_port: int = 0
    action: EgressAction = EgressAction.UNICAST

    def __post_init__(self) -> None:
        if self.packet is None:
            raise ValueError("PacketEgress requires a packet")


@dataclass(frozen=True)
class PacketDrop(DataplaneEvent):
    """The pipeline dropped a packet (explicit drop action or table miss)."""

    packet: Packet = None  # type: ignore[assignment]
    in_port: int = 0
    reason: str = "drop-action"

    def __post_init__(self) -> None:
        if self.packet is None:
            raise ValueError("PacketDrop requires a packet")


class OobKind(Enum):
    """Out-of-band event kinds (control-plane-ish, not packets)."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    PORT_DOWN = "port-down"
    PORT_UP = "port-up"


@dataclass(frozen=True)
class OutOfBandEvent(DataplaneEvent):
    """A non-packet event, e.g. a link going down.

    The learning-switch multiple-match property ("link-down messages delete
    the set of learned destinations") observes these; handling them requires
    advancing *many* monitor instances from one event (Feature 8, multiple
    match).
    """

    oob_kind: OobKind = OobKind.LINK_DOWN
    port: Optional[int] = None


@dataclass(frozen=True)
class TimerFired(DataplaneEvent):
    """A monitor timer elapsed.

    ``instance_key`` scopes the timer to one monitor instance; ``timer_id``
    names which stage's clock it was.  These events drive timeout *actions*
    (Feature 7) — they advance state rather than merely expiring it.
    """

    instance_key: Tuple = ()
    timer_id: str = ""


PacketEvent = (PacketArrival, PacketEgress, PacketDrop)
