"""Flow tables: priority-ordered rules with idle/hard timeouts.

Timeout semantics follow OpenFlow: a *hard* timeout expires a rule a fixed
interval after installation; an *idle* timeout expires it after a period
with no matches (each match refreshes the clock).  On expiry, a rule's
``on_timeout`` actions — the Varanus extension behind the paper's Feature 7
— are handed to the switch for execution instead of the rule dying silently.

Expiry is evaluated lazily against virtual time at lookup, plus eagerly via
:meth:`FlowTable.expire` which the switch calls from scheduled timers, so
timeout *actions* fire at their deadline even in quiet periods.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .actions import Action
from .match import MatchSpec

_rule_ids = itertools.count(1)


@dataclass
class FlowRule:
    """One installed rule."""

    match: MatchSpec
    actions: Tuple[Action, ...]
    priority: int = 100
    idle_timeout: Optional[float] = None
    hard_timeout: Optional[float] = None
    on_timeout: Tuple[Action, ...] = ()
    cookie: str = ""
    rule_id: int = field(default_factory=lambda: next(_rule_ids))
    installed_at: float = 0.0
    last_matched_at: float = 0.0
    packet_count: int = 0

    def expires_at(self) -> Optional[float]:
        """Earliest virtual time this rule would expire, or None."""
        candidates = []
        if self.hard_timeout is not None:
            candidates.append(self.installed_at + self.hard_timeout)
        if self.idle_timeout is not None:
            candidates.append(self.last_matched_at + self.idle_timeout)
        return min(candidates) if candidates else None

    def is_expired(self, now: float) -> bool:
        deadline = self.expires_at()
        return deadline is not None and now >= deadline

    def record_match(self, now: float) -> None:
        self.packet_count += 1
        self.last_matched_at = now


@dataclass(frozen=True)
class ExpiredRule:
    """Returned by :meth:`FlowTable.expire` for each rule that timed out."""

    rule: FlowRule
    table_id: int
    deadline: float


class FlowTable:
    """A priority-ordered match-action table.

    Lookup returns the highest-priority matching rule; ties break toward
    the earliest-installed rule, keeping pipeline behaviour deterministic.
    """

    def __init__(self, table_id: int, name: str = "") -> None:
        self.table_id = table_id
        self.name = name or f"table-{table_id}"
        self._rules: List[FlowRule] = []

    # -- rule management ---------------------------------------------------
    def install(
        self,
        match: MatchSpec,
        actions: Sequence[Action],
        priority: int = 100,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
        on_timeout: Sequence[Action] = (),
        cookie: str = "",
        now: float = 0.0,
        replace: bool = True,
    ) -> FlowRule:
        """Install a rule; by default replaces an identical-match rule.

        Replacement-on-identical-match mirrors OpenFlow ``OFPFC_ADD``
        semantics and is what makes re-learning refresh state rather than
        duplicate it.
        """
        if replace:
            self._rules = [
                r
                for r in self._rules
                if not (r.match == match and r.priority == priority)
            ]
        rule = FlowRule(
            match=match,
            actions=tuple(actions),
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            on_timeout=tuple(on_timeout),
            cookie=cookie,
            installed_at=now,
            last_matched_at=now,
        )
        self._rules.append(rule)
        return rule

    def remove(self, rule: FlowRule) -> bool:
        """Remove a specific rule; True if it was present."""
        try:
            self._rules.remove(rule)
            return True
        except ValueError:
            return False

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove all rules with the given cookie; returns count removed."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        return before - len(self._rules)

    def clear(self) -> None:
        self._rules.clear()

    # -- lookup --------------------------------------------------------------
    def lookup(
        self, fields: Mapping[str, object], now: float
    ) -> Optional[FlowRule]:
        """Best live match for a flat field map, or None (table miss)."""
        best: Optional[FlowRule] = None
        for rule in self._rules:
            if rule.is_expired(now):
                continue
            if best is not None and rule.priority <= best.priority:
                if rule.priority < best.priority or rule.rule_id > best.rule_id:
                    continue
            if rule.match.matches_fields(fields):
                if (
                    best is None
                    or rule.priority > best.priority
                    or (rule.priority == best.priority and rule.rule_id < best.rule_id)
                ):
                    best = rule
        if best is not None:
            best.record_match(now)
        return best

    # -- expiry ---------------------------------------------------------------
    def expire(self, now: float) -> List[ExpiredRule]:
        """Remove expired rules, returning them (for timeout actions)."""
        expired: List[ExpiredRule] = []
        live: List[FlowRule] = []
        for rule in self._rules:
            if rule.is_expired(now):
                expired.append(
                    ExpiredRule(rule=rule, table_id=self.table_id,
                                deadline=rule.expires_at() or now)
                )
            else:
                live.append(rule)
        self._rules = live
        return expired

    def next_deadline(self) -> Optional[float]:
        """Earliest expiry among live rules (drives the expiry timer)."""
        deadlines = [d for d in (r.expires_at() for r in self._rules) if d is not None]
        return min(deadlines) if deadlines else None

    # -- introspection ----------------------------------------------------------
    @property
    def rules(self) -> Tuple[FlowRule, ...]:
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowTable(id={self.table_id}, rules={len(self._rules)})"
