"""The software switch.

A :class:`Switch` owns a match-action :class:`~repro.switch.pipeline.Pipeline`,
register state, ports, an optional controller application, and a set of
**event taps** — the hook a monitor attaches to.  Taps receive the full
dataplane event stream of Sec. 2: arrivals, egresses (with the switch's own
output decision visible), drops (if the switch supports drop visibility),
out-of-band events, and timer firings.

Two design axes from the paper are explicit constructor knobs:

* **Side-effect control (Feature 9)** — ``ProcessingMode.INLINE`` applies
  state updates before the packet departs, adding the update cost to the
  packet's forwarding latency; ``ProcessingMode.SPLIT`` forwards
  immediately and applies updates after ``split_lag`` seconds of virtual
  time, so state can lag behind packets issued in response (the monitor
  error the paper predicts).
* **Drop visibility** — ``drop_visibility=False`` reproduces the
  OpenFlow-1.5 gap where dropped packets never reach the egress stage, so
  taps see no :class:`PacketDrop` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from ..netsim.scheduler import EventScheduler
from ..packet.packet import Packet
from ..telemetry import NULL_TRACER, MetricsRegistry, NullRegistry, Tracer
from ..telemetry.metrics import LATENCY_BUCKETS
from .actions import (
    Action,
    DeleteRules,
    Learn,
    Notify,
    Output,
    RegisterWrite,
    SetField,
)
from .events import (
    DataplaneEvent,
    EgressAction,
    OobKind,
    OutOfBandEvent,
    PacketArrival,
    PacketDrop,
    PacketEgress,
    TimerFired,
)
from .match import MatchSpec
from .pipeline import Alert, MissPolicy, Pipeline, PipelineResult, StateUpdate
from .registers import GlobalArrays, RegisterArray, StateCostMeter
from .tables import ExpiredRule, FlowRule

#: Seconds of simulated latency per abstract cost tick (inline mode).
TICK_SECONDS = 1e-6
#: Baseline store-and-forward latency for any packet.
BASE_FORWARD_LATENCY = 5e-6

#: Canonical split-mode state-update lag (Sec. 3.3): how long a deferred
#: update stays in flight.  The Monitor, BackendMonitor, the
#: split-vs-inline bench, and the linter's hazard classification all key
#: off this one value.
DEFAULT_SPLIT_LAG = 500e-6


class ProcessingMode(Enum):
    """Feature 9: how state updates interleave with forwarding."""

    INLINE = "inline"
    SPLIT = "split"


class SwitchApp(Protocol):
    """Controller-application interface (packet-in style)."""

    def setup(self, switch: "Switch") -> None:
        """Install initial rules / state when attached."""

    def on_packet_in(self, switch: "Switch", packet: Packet, in_port: int) -> None:
        """Handle a punted packet."""

    def on_oob(self, switch: "Switch", event: OutOfBandEvent) -> None:
        """Handle an out-of-band event (link/port status)."""


Tap = Callable[[DataplaneEvent], None]
Receiver = Callable[[Packet], None]


class SwitchStats:
    """Aggregate forwarding statistics — a thin view over the registry.

    Historically a dataclass of loose fields; each one is now backed by a
    registry instrument, so ``switch.stats.arrivals`` and the exported
    ``repro_switch_arrivals_total`` sample are the SAME cell (no double
    counting).  Works against the default
    :class:`~repro.telemetry.NullRegistry` too: its counters still count,
    they just export nothing.
    """

    _COUNTERS = {
        "arrivals": "repro_switch_arrivals_total",
        "unicasts": "repro_switch_unicasts_total",
        "floods": "repro_switch_floods_total",
        "drops": "repro_switch_drops_total",
        "controller_punts": "repro_switch_controller_punts_total",
        "alerts": "repro_switch_alerts_total",
    }

    __slots__ = ("_registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else NullRegistry()

    def __getattr__(self, name: str) -> int:
        counter = self._COUNTERS.get(name)
        if counter is not None:
            return int(self._registry.counter(counter).value)
        raise AttributeError(name)

    @property
    def total_forward_latency(self) -> float:
        return self._registry.counter(
            "repro_switch_forward_latency_seconds_total").value

    @property
    def mean_forward_latency(self) -> float:
        done = self.unicasts + self.floods
        return self.total_forward_latency / done if done else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = {name: getattr(self, name) for name in self._COUNTERS}
        fields["mean_forward_latency"] = self.mean_forward_latency
        inner = ", ".join(f"{k}={v}" for k, v in fields.items())
        return f"SwitchStats({inner})"


class Switch:
    """A single software switch on virtual time."""

    def __init__(
        self,
        switch_id: str,
        scheduler: EventScheduler,
        num_ports: int = 4,
        num_tables: int = 1,
        num_egress_tables: int = 0,
        miss_policy: MissPolicy = MissPolicy.FLOOD,
        max_parse_layer: int = 7,
        mode: ProcessingMode = ProcessingMode.INLINE,
        split_lag: float = DEFAULT_SPLIT_LAG,
        drop_visibility: bool = True,
        app: Optional[SwitchApp] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if num_ports < 1:
            raise ValueError("switch needs at least one port")
        self.switch_id = switch_id
        self.scheduler = scheduler
        self.meter = StateCostMeter()
        self.registry = registry if registry is not None else NullRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pipeline = Pipeline(
            num_tables=num_tables,
            num_egress_tables=num_egress_tables,
            miss_policy=miss_policy,
            max_parse_layer=max_parse_layer,
            meter=self.meter,
            registry=self.registry,
        )
        self.ports: Dict[int, bool] = {p: True for p in range(1, num_ports + 1)}
        self.mode = mode
        self.split_lag = split_lag
        self.drop_visibility = drop_visibility
        self._init_instruments()
        self.stats = SwitchStats(self.registry)
        self.globals = GlobalArrays(meter=self.meter)
        self._registers: Dict[str, RegisterArray] = {}
        self._taps: List[Tap] = []
        self._alert_sinks: List[Callable[[Alert], None]] = []
        self._receivers: Dict[int, Receiver] = {}
        self._expiry_timer = None
        self._app = app
        if app is not None:
            app.setup(self)

    def _init_instruments(self) -> None:
        """Cache hot-path instrument handles (no per-packet dict lookups)."""
        r = self.registry
        self._c_arrivals = r.counter(
            "repro_switch_arrivals_total", help="Packets received on any port")
        self._c_unicasts = r.counter(
            "repro_switch_unicasts_total", help="Unicast packet departures")
        self._c_floods = r.counter(
            "repro_switch_floods_total", help="Flood decisions")
        self._c_drops = r.counter(
            "repro_switch_drops_total", help="Packets dropped by the pipeline")
        self._c_punts = r.counter(
            "repro_switch_controller_punts_total",
            help="Packets punted to the controller slow path")
        self._c_alerts = r.counter(
            "repro_switch_alerts_total",
            help="Dataplane-raised Notify alerts")
        self._c_latency_sum = r.counter(
            "repro_switch_forward_latency_seconds_total",
            help="Cumulative forwarding latency over all departures",
            unit="seconds")
        self._h_latency = r.histogram(
            "repro_switch_forward_latency_seconds",
            help="Per-departure forwarding latency",
            unit="seconds",
            buckets=LATENCY_BUCKETS)

    # -- wiring ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.clock.now()

    def attach(self, port: int, receiver: Receiver) -> None:
        """Connect a link/host receiver to a port."""
        self._check_port(port)
        self._receivers[port] = receiver

    def add_tap(self, tap: Tap) -> None:
        """Subscribe a monitor to the dataplane event stream."""
        self._taps.append(tap)

    def add_alert_sink(self, sink: Callable[[Alert], None]) -> None:
        """Subscribe to dataplane-raised Notify alerts."""
        self._alert_sinks.append(sink)

    def set_app(self, app: SwitchApp) -> None:
        self._app = app
        app.setup(self)

    def register_array(self, name: str, size: int = 1024) -> RegisterArray:
        """Get-or-create a named register array (P4-style state)."""
        if name not in self._registers:
            self._registers[name] = RegisterArray(name, size, meter=self.meter)
        return self._registers[name]

    def _check_port(self, port: int) -> None:
        if port not in self.ports:
            raise ValueError(f"switch {self.switch_id} has no port {port}")

    def up_ports(self) -> Tuple[int, ...]:
        return tuple(p for p, up in sorted(self.ports.items()) if up)

    # -- rule management (controller-facing) ---------------------------------
    def install_rule(
        self,
        match: MatchSpec,
        actions: Sequence[Action],
        table_id: int = 0,
        priority: int = 100,
        idle_timeout: Optional[float] = None,
        hard_timeout: Optional[float] = None,
        on_timeout: Sequence[Action] = (),
        cookie: str = "",
    ) -> FlowRule:
        """Install a rule via the slow path (flow_mod)."""
        self.meter.charge_slow_update()
        rule = self.pipeline.table(table_id).install(
            match,
            actions,
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            on_timeout=on_timeout,
            cookie=cookie,
            now=self.now,
        )
        self._arm_expiry_timer()
        return rule

    def _arm_expiry_timer(self) -> None:
        deadline = self.pipeline.next_deadline()
        if deadline is None:
            return
        if self._expiry_timer is not None and self._expiry_timer.when <= deadline:
            return
        if self._expiry_timer is not None:
            self.scheduler.cancel(self._expiry_timer)
        self._expiry_timer = self.scheduler.call_at(
            max(deadline, self.now), self._on_expiry_deadline, label="rule-expiry"
        )

    def _on_expiry_deadline(self) -> None:
        self._expiry_timer = None
        for expired in self.pipeline.expire(self.now):
            if expired.rule.on_timeout:
                self._emit(
                    TimerFired(
                        switch_id=self.switch_id,
                        time=self.now,
                        instance_key=(expired.rule.cookie, expired.rule.rule_id),
                        timer_id=expired.rule.cookie or f"rule-{expired.rule.rule_id}",
                    )
                )
                for action in expired.rule.on_timeout:
                    self._run_timeout_action(action)
        self._arm_expiry_timer()

    def _run_timeout_action(self, action: Action) -> None:
        """Execute a Feature-7 timeout action (no packet context)."""
        if isinstance(action, Learn):
            self._apply_learn(action)
        elif isinstance(action, RegisterWrite):
            array = self.register_array(action.array)
            array.write(int(action.index), int(action.value))  # type: ignore[arg-type]
        elif isinstance(action, DeleteRules):
            self.delete_rules(action.cookie, action.table_id)
        elif isinstance(action, Notify):
            alert = Alert(message=action.message, carried=dict(action.baked),
                          packet_uid=0)
            self._c_alerts.inc()
            for sink in self._alert_sinks:
                sink(alert)
        # Output/Drop are meaningless without a packet; ignore silently —
        # backends never compile them into on_timeout.

    # -- dataplane ------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> PipelineResult:
        """A packet arrives on ``in_port``; run the full dataplane path."""
        self._check_port(in_port)
        if not self.ports[in_port]:
            raise ValueError(f"port {in_port} is down")
        arrival_time = self.now
        self._c_arrivals.inc()
        # The root span opens BEFORE the arrival reaches the taps, so a
        # monitor processing this packet synchronously nests its spans
        # under it (uid correlation across the layers).
        root = None
        if self.tracer.enabled:
            root = self.tracer.start(
                "switch.receive", arrival_time, uid=packet.uid, root=True,
                switch=self.switch_id, in_port=in_port)
        self._emit(
            PacketArrival(
                switch_id=self.switch_id,
                time=arrival_time,
                packet=packet,
                in_port=in_port,
            )
        )

        pspan = None
        if root is not None:
            pspan = self.tracer.start(
                "pipeline.process", arrival_time, uid=packet.uid)
        ticks_before = self.meter.total_ticks
        result = self.pipeline.process(packet, in_port, arrival_time)

        # Feature 9: inline mode applies state updates *now*, charging their
        # cost to this packet's latency; split mode defers them.
        if self.mode is ProcessingMode.INLINE:
            for update in result.updates:
                self._apply_update(update)
        else:
            for update in result.updates:
                self.scheduler.call_after(
                    self.split_lag,
                    lambda u=update: self._apply_update(u),
                    label="split-state-update",
                )

        ticks_spent = self.meter.total_ticks - ticks_before
        latency = BASE_FORWARD_LATENCY + ticks_spent * TICK_SECONDS
        egress_time = arrival_time + latency
        if pspan is not None:
            self.tracer.end(
                pspan, egress_time,
                tables=result.tables_traversed,
                matched=len(result.matched_rules))

        for alert in result.alerts:
            self._c_alerts.inc()
            for sink in self._alert_sinks:
                sink(alert)

        if result.dropped and not result.forwarded:
            self._c_drops.inc()
            if self.drop_visibility:
                self._emit(
                    PacketDrop(
                        switch_id=self.switch_id,
                        time=egress_time,
                        packet=packet,
                        in_port=in_port,
                        reason=result.drop_reason,
                    )
                )
        if result.to_controller:
            self._c_punts.inc()
            self.meter.charge_slow_update()
            if self._app is not None:
                self._app.on_packet_in(self, packet, in_port)

        telemetry = self.registry.enabled
        if result.flooded:
            self._c_floods.inc()
            self._c_latency_sum.inc(latency)
            if telemetry:
                self._h_latency.observe(latency)
            for port in self.up_ports():
                if port != in_port:
                    self._send(packet.duplicate(), port, in_port, egress_time,
                               EgressAction.FLOOD)
        for out_port, out_packet in result.outputs:
            self._c_unicasts.inc()
            self._c_latency_sum.inc(latency)
            if telemetry:
                self._h_latency.observe(latency)
            self._send(out_packet, out_port, in_port, egress_time,
                       EgressAction.UNICAST)
        if root is not None:
            self.tracer.end(
                root, egress_time,
                forwarded=result.forwarded, dropped=result.dropped,
                punted=result.to_controller)
        return result

    def inject(self, packet: Packet, out_port: int) -> None:
        """Controller/app-originated packet-out (unicast)."""
        self._check_port(out_port)
        self._send(packet, out_port, in_port=0, when=self.now,
                   action=EgressAction.UNICAST)

    def flood(self, packet: Packet, in_port: int = 0) -> None:
        """App-directed flood: all up ports except ``in_port``.

        Egress events carry ``EgressAction.FLOOD`` so a monitor can match
        on the switch's own output decision (flood vs. unicast) — the
        metadata-matching capability Sec. 3.2 calls a critical gap.
        """
        self._c_floods.inc()
        for port in self.up_ports():
            if port != in_port:
                self._send(packet.duplicate(), port, in_port, self.now,
                           EgressAction.FLOOD)

    def drop(self, packet: Packet, in_port: int, reason: str = "app-drop") -> None:
        """App-directed drop; visible to taps only with drop visibility."""
        self._c_drops.inc()
        if self.drop_visibility:
            self._emit(
                PacketDrop(
                    switch_id=self.switch_id,
                    time=self.now,
                    packet=packet,
                    in_port=in_port,
                    reason=reason,
                )
            )

    def _send(
        self,
        packet: Packet,
        out_port: int,
        in_port: int,
        when: float,
        action: EgressAction,
    ) -> None:
        if not self.ports.get(out_port, False):
            return  # output to a downed port is silently discarded
        self._emit(
            PacketEgress(
                switch_id=self.switch_id,
                time=when,
                packet=packet,
                out_port=out_port,
                in_port=in_port,
                action=action,
            )
        )
        receiver = self._receivers.get(out_port)
        if receiver is not None:
            if when > self.now:
                self.scheduler.call_at(
                    when, lambda p=packet, r=receiver: r(p), label="deliver"
                )
            else:
                receiver(packet)

    def _apply_update(self, update: StateUpdate) -> None:
        if isinstance(update.action, Learn):
            self.meter.charge_slow_update()
            self._apply_learn(update.action)
        elif isinstance(update.action, RegisterWrite):
            array = self.register_array(update.action.array)
            array.write(int(update.action.index), int(update.action.value))  # type: ignore[arg-type]
        elif isinstance(update.action, DeleteRules):
            self.meter.charge_slow_update()
            self.delete_rules(update.action.cookie, update.action.table_id)
        else:  # pragma: no cover - pipeline collects only state actions
            raise TypeError(f"cannot apply update {update.action!r}")

    def delete_rules(self, cookie: str, table_id: Optional[int] = None) -> int:
        """Remove rules by cookie (Varanus on-switch deletion extension)."""
        removed = 0
        for table in self.pipeline.tables + self.pipeline.egress_tables:
            if table_id is not None and table.table_id != table_id:
                continue
            removed += table.remove_by_cookie(cookie)
        return removed

    def _apply_learn(self, learn: Learn) -> None:
        """Install the (already-resolved) rule a Learn action describes.

        Companion learns (``extra``) land in the SAME resolved table — for
        a fresh-table learn (-1) that means one unrolled instance table
        holds the watcher plus its timer/cancel rules together.
        """
        match = MatchSpec()
        for name, value in learn.match:
            if name in learn.negate:
                match = match.neq(name, value)
            else:
                match = match.eq(name, value)
        table = self._table_for_learn(learn.table_id)
        for companion in learn.extra:
            pinned = Learn(
                table_id=table.table_id,
                match=companion.match,
                actions=companion.actions,
                priority=companion.priority,
                negate=companion.negate,
                idle_timeout=companion.idle_timeout,
                hard_timeout=companion.hard_timeout,
                on_timeout=companion.on_timeout,
                cookie=companion.cookie,
                extra=companion.extra,
            )
            self._apply_learn(pinned)
        # Nested actions referring to "this table" (-2) become concrete now
        # that the target table is known (fresh tables get ids on creation).
        actions = self._localize(learn.actions, table.table_id)
        on_timeout = self._localize(learn.on_timeout, table.table_id)
        table.install(
            match,
            actions,
            priority=learn.priority,
            idle_timeout=learn.idle_timeout,
            hard_timeout=learn.hard_timeout,
            on_timeout=on_timeout,
            cookie=learn.cookie,
            now=self.now,
        )
        self._arm_expiry_timer()

    def _localize(self, actions: Sequence[Action], table_id: int):
        """Resolve table_id == -2 ('this table') inside installed actions."""
        out = []
        for action in actions:
            if isinstance(action, Learn) and action.table_id == -2:
                action = Learn(
                    table_id=table_id,
                    match=action.match,
                    actions=self._localize(action.actions, table_id),
                    priority=action.priority,
                    negate=action.negate,
                    idle_timeout=action.idle_timeout,
                    hard_timeout=action.hard_timeout,
                    on_timeout=self._localize(action.on_timeout, table_id),
                    cookie=action.cookie,
                    extra=tuple(self._localize((e,), table_id)[0]
                                for e in action.extra),
                )
            elif isinstance(action, DeleteRules) and action.table_id == -2:
                action = DeleteRules(cookie=action.cookie, table_id=table_id)
            out.append(action)
        return tuple(out)

    def _table_for_learn(self, table_id: int):
        """Find or grow to the learn target table (Varanus unrolling).

        ``table_id < 0`` requests a *fresh* table appended to the pipeline:
        the Varanus recursive-learn behaviour of giving each unrolled
        monitor instance its own table (so depth grows per instance).
        """
        if table_id < 0:
            return self.pipeline.add_table()
        for table in self.pipeline.tables:
            if table.table_id == table_id:
                return table
        while self.pipeline.tables[-1].table_id < table_id:
            self.pipeline.add_table()
        return self.pipeline.table(table_id)

    # -- out-of-band -------------------------------------------------------------
    def set_port_status(self, port: int, up: bool) -> None:
        """Administratively change a port; emits the out-of-band event."""
        self._check_port(port)
        if self.ports[port] == up:
            return
        self.ports[port] = up
        event = OutOfBandEvent(
            switch_id=self.switch_id,
            time=self.now,
            oob_kind=OobKind.PORT_UP if up else OobKind.PORT_DOWN,
            port=port,
        )
        self._emit(event)
        if self._app is not None:
            self._app.on_oob(self, event)

    def link_down(self, port: int) -> None:
        self.set_port_status(port, up=False)

    def link_up(self, port: int) -> None:
        self.set_port_status(port, up=True)

    # -- internals -----------------------------------------------------------------
    def _emit(self, event: DataplaneEvent) -> None:
        for tap in self._taps:
            tap(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Switch({self.switch_id!r}, depth={self.pipeline.depth}, "
            f"mode={self.mode.value})"
        )
