"""Header field rewriting.

Maps the flat dotted field namespace back onto header dataclass attributes
so Set-Field actions (and NAT) can rewrite packets.  Rewrites preserve the
packet ``uid`` — the rewritten departure is "the same packet" as the arrival
for the purposes of the paper's Feature 5.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple, Type

from ..packet.dhcp import Dhcp
from ..packet.headers import ICMP, TCP, UDP, Arp, Ethernet, IPv4, Vlan
from ..packet.packet import Packet


class RewriteError(KeyError):
    """Raised when a field cannot be rewritten on the given packet."""


# dotted field name -> (header class, attribute name)
_FIELD_MAP: Dict[str, Tuple[Type, str]] = {
    "eth.src": (Ethernet, "src"),
    "eth.dst": (Ethernet, "dst"),
    "eth.type": (Ethernet, "ethertype"),
    "vlan.vid": (Vlan, "vid"),
    "vlan.pcp": (Vlan, "pcp"),
    "arp.op": (Arp, "op"),
    "arp.sender_mac": (Arp, "sender_mac"),
    "arp.sender_ip": (Arp, "sender_ip"),
    "arp.target_mac": (Arp, "target_mac"),
    "arp.target_ip": (Arp, "target_ip"),
    "ipv4.src": (IPv4, "src"),
    "ipv4.dst": (IPv4, "dst"),
    "ipv4.ttl": (IPv4, "ttl"),
    "ipv4.dscp": (IPv4, "dscp"),
    "tcp.src": (TCP, "src_port"),
    "tcp.dst": (TCP, "dst_port"),
    "tcp.flags": (TCP, "flags"),
    "udp.src": (UDP, "src_port"),
    "udp.dst": (UDP, "dst_port"),
    "icmp.type": (ICMP, "icmp_type"),
    "icmp.code": (ICMP, "code"),
    "dhcp.yiaddr": (Dhcp, "yiaddr"),
    "dhcp.server_id": (Dhcp, "server_id"),
}


def rewritable_fields() -> Tuple[str, ...]:
    """All dotted field names Set-Field can target."""
    return tuple(sorted(_FIELD_MAP))


def rewrite_field(packet: Packet, name: str, value: object) -> Packet:
    """Return a copy of ``packet`` with dotted field ``name`` set to ``value``.

    The copy shares the original's uid.  Raises :class:`RewriteError` if the
    field is unknown or the packet lacks the corresponding header.
    """
    if name == "l4.src" or name == "l4.dst":
        # Protocol-generic L4 port rewrite: resolve against whichever L4
        # header the packet actually carries (used by NAT and the LB).
        attr = "src_port" if name.endswith("src") else "dst_port"
        for header_type in (TCP, UDP):
            header = packet.find(header_type)
            if header is not None:
                return packet.with_header(replace(header, **{attr: value}))
        raise RewriteError(f"packet has no TCP/UDP header for {name}")
    try:
        header_type, attr = _FIELD_MAP[name]
    except KeyError:
        raise RewriteError(f"unknown rewritable field {name!r}") from None
    header = packet.find(header_type)
    if header is None:
        raise RewriteError(
            f"packet lacks {header_type.__name__} header; cannot set {name}"
        )
    return packet.with_header(replace(header, **{attr: value}))
