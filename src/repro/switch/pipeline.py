"""The match-action pipeline: ingress tables, then egress tables.

Execution model (OpenFlow-flavoured):

* matching starts at the lowest-id ingress table; a rule's actions run in
  order; ``GotoTable`` continues matching at a later table; the first
  terminal action (``Output``/``Flood``/``Drop``/``ToController``) fixes the
  packet's fate;
* a table miss applies the pipeline's ``miss_policy``;
* after the output decision, each departing copy traverses the egress
  tables with ``out_port`` visible as metadata — OpenFlow 1.5's egress
  pipeline, which the paper notes dropped packets never enter;
* state-mutating actions (``Learn``, ``RegisterWrite``) are *collected*
  into :class:`StateUpdate` records rather than applied inline.  Whether the
  switch applies them before or after the packet departs is Feature 9
  (side-effect control) and is decided by the switch, not the pipeline.

The pipeline charges a :class:`~repro.switch.registers.StateCostMeter` per
table traversed, which is what makes Varanus's depth-proportional-to-
instances cost (Sec. 3.3) measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..packet.packet import Packet
from ..telemetry import MetricsRegistry, NullRegistry
from .actions import (
    Action,
    DeleteRules,
    Drop,
    Flood,
    GotoTable,
    Learn,
    Notify,
    Output,
    RegisterWrite,
    SetField,
    ToController,
    keyed_cookie,
    resolve_value,
)


def _resolve_learn(
    action: Learn, fields: Mapping[str, object], current_table: int = 0
) -> Learn:
    """Bind a Learn template against the triggering packet's fields.

    ``table_id == -2`` ("the table this rule lives in") resolves to
    ``current_table`` now; ``-1`` (fresh table) stays for the switch.
    """
    return Learn(
        table_id=current_table if action.table_id == -2 else action.table_id,
        match=tuple(
            (name, resolve_value(value, fields)) for name, value in action.match
        ),
        actions=action.build_actions(fields),
        priority=action.priority,
        negate=action.negate,
        idle_timeout=action.idle_timeout,
        hard_timeout=action.hard_timeout,
        on_timeout=tuple(
            DeleteRules(
                cookie=keyed_cookie(a.cookie, a.cookie_fields, fields),
                table_id=a.table_id,
            )
            if isinstance(a, DeleteRules) and a.cookie_fields
            else a
            for a in action.build_timeout_actions(fields)
        ),
        cookie=keyed_cookie(action.cookie, action.cookie_fields, fields),
        extra=tuple(
            _resolve_learn(e, fields, current_table) for e in action.extra
        ),
    )
from .match import MatchSpec
from .registers import StateCostMeter
from .rewrite import RewriteError, rewrite_field
from .tables import ExpiredRule, FlowRule, FlowTable


class MissPolicy(Enum):
    """What a table miss at the end of the ingress pipeline does."""

    DROP = "drop"
    FLOOD = "flood"
    CONTROLLER = "controller"


class PipelineError(Exception):
    """Raised on malformed pipelines (e.g. GotoTable moving backwards)."""


@dataclass(frozen=True)
class StateUpdate:
    """A deferred state mutation collected during pipeline execution."""

    action: Action  # a resolved Learn or RegisterWrite
    trigger_fields: Mapping[str, object]
    slow_path: bool


@dataclass(frozen=True)
class Alert:
    """A dataplane-raised monitor notification (from a Notify action)."""

    message: str
    carried: Mapping[str, object]
    packet_uid: int


@dataclass
class PipelineResult:
    """Everything one packet's traversal produced."""

    outputs: List[Tuple[int, Packet]] = field(default_factory=list)
    flooded: bool = False
    dropped: bool = False
    drop_reason: str = ""
    to_controller: bool = False
    controller_reason: str = ""
    updates: List[StateUpdate] = field(default_factory=list)
    alerts: List[Alert] = field(default_factory=list)
    tables_traversed: int = 0
    matched_rules: List[FlowRule] = field(default_factory=list)

    @property
    def forwarded(self) -> bool:
        return bool(self.outputs) or self.flooded


class Pipeline:
    """An ordered set of ingress tables plus an optional egress stage."""

    def __init__(
        self,
        num_tables: int = 1,
        num_egress_tables: int = 0,
        miss_policy: MissPolicy = MissPolicy.DROP,
        max_parse_layer: int = 7,
        meter: Optional[StateCostMeter] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_tables < 1:
            raise PipelineError("pipeline needs at least one ingress table")
        self.tables: List[FlowTable] = [FlowTable(i) for i in range(num_tables)]
        self.egress_tables: List[FlowTable] = [
            FlowTable(1000 + i, name=f"egress-{i}") for i in range(num_egress_tables)
        ]
        self.miss_policy = miss_policy
        self.max_parse_layer = max_parse_layer
        self.meter = meter if meter is not None else StateCostMeter()
        self.registry = registry if registry is not None else NullRegistry()
        # Per-table hit/miss counters are created lazily because Varanus
        # unrolling grows the table set at runtime; the `enabled` gate
        # keeps the default (NullRegistry) lookup path at one attr check.
        self._telemetry = self.registry.enabled
        self._hit_counters: Dict[int, object] = {}
        self._miss_counters: Dict[int, object] = {}

    def _note_lookup(self, table_id: int, hit: bool) -> None:
        cache = self._hit_counters if hit else self._miss_counters
        counter = cache.get(table_id)
        if counter is None:
            name = ("repro_pipeline_table_hits_total" if hit
                    else "repro_pipeline_table_misses_total")
            counter = self.registry.counter(
                name,
                help=("Lookups that matched a rule, per table" if hit
                      else "Lookups that missed, per table"),
                labels={"table": str(table_id)})
            cache[table_id] = counter
        counter.inc()

    # -- table access -----------------------------------------------------
    def table(self, table_id: int) -> FlowTable:
        for t in self.tables:
            if t.table_id == table_id:
                return t
        raise PipelineError(f"no ingress table with id {table_id}")

    def egress_table(self, index: int) -> FlowTable:
        return self.egress_tables[index]

    def add_table(self) -> FlowTable:
        """Append a new ingress table (Varanus unrolling grows the pipeline)."""
        new_id = self.tables[-1].table_id + 1 if self.tables else 0
        table = FlowTable(new_id)
        self.tables.append(table)
        return table

    @property
    def depth(self) -> int:
        """Current ingress pipeline depth — Sec. 3.3's key scalability axis."""
        return len(self.tables)

    # -- execution ----------------------------------------------------------
    def _packet_fields(
        self, packet: Packet, extra: Mapping[str, object]
    ) -> Dict[str, object]:
        fields: Dict[str, object] = dict(packet.fields(max_layer=self.max_parse_layer))
        fields.update(extra)
        return fields

    def process(
        self,
        packet: Packet,
        in_port: int,
        now: float,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> PipelineResult:
        """Run one packet through ingress matching and action execution."""
        result = PipelineResult()
        working = packet
        meta: Dict[str, object] = {"in_port": in_port}
        if metadata:
            meta.update(metadata)

        table_index = 0
        decided = False
        while table_index < len(self.tables):
            table = self.tables[table_index]
            result.tables_traversed += 1
            self.meter.charge_lookup()
            fields = self._packet_fields(working, meta)
            rule = table.lookup(fields, now)
            if self._telemetry:
                self._note_lookup(table.table_id, rule is not None)
            if rule is None:
                table_index += 1
                # Fall through to the next table only when the pipeline is
                # a Varanus-style unrolled chain: standard OF semantics
                # would stop at a miss. We model OF by applying the miss
                # policy only after the *last* table; intermediate misses
                # continue (a table with no match is transparent).
                continue
            result.matched_rules.append(rule)
            goto: Optional[int] = None
            for action in rule.actions:
                working, goto, decided = self._apply(
                    action, working, fields, result, decided,
                    current_table=table.table_id,
                )
                if goto is not None:
                    break
            if goto is not None:
                if goto <= table.table_id:
                    raise PipelineError(
                        f"GotoTable must move forward: {table.table_id} -> {goto}"
                    )
                table_index = next(
                    (i for i, t in enumerate(self.tables) if t.table_id == goto),
                    len(self.tables),
                )
                continue
            if decided:
                break
            # A matched rule with no terminal action is transparent: the
            # packet continues to later tables — the behaviour Varanus's
            # unrolled instance chains rely on (one packet may advance
            # watchers in several instance tables).
            table_index += 1

        if not decided and not result.forwarded:
            self._apply_miss_policy(working, result)

        self._run_egress(working, in_port, now, meta, result)
        return result

    def _apply(
        self,
        action: Action,
        working: Packet,
        fields: Mapping[str, object],
        result: PipelineResult,
        decided: bool,
        current_table: int = 0,
    ) -> Tuple[Packet, Optional[int], bool]:
        """Apply one action; returns (packet, goto_table_or_None, decided)."""
        if isinstance(action, SetField):
            try:
                working = rewrite_field(working, action.name, action.value)
            except RewriteError as exc:
                raise PipelineError(str(exc)) from exc
            return working, None, decided
        if isinstance(action, Output):
            if not isinstance(action.port, int):
                raise PipelineError(
                    f"Output port unresolved at execution: {action.port!r}"
                )
            result.outputs.append((action.port, working))
            return working, None, True
        if isinstance(action, Flood):
            result.flooded = True
            return working, None, True
        if isinstance(action, Drop):
            result.dropped = True
            result.drop_reason = action.reason
            return working, None, True
        if isinstance(action, ToController):
            result.to_controller = True
            result.controller_reason = action.reason
            return working, None, True
        if isinstance(action, GotoTable):
            return working, action.table_id, decided
        if isinstance(action, Learn):
            result.updates.append(
                StateUpdate(action=_resolve_learn(action, fields, current_table),
                            trigger_fields=dict(fields), slow_path=True)
            )
            return working, None, decided
        if isinstance(action, DeleteRules):
            resolved_delete = DeleteRules(
                cookie=keyed_cookie(action.cookie, action.cookie_fields, fields),
                table_id=current_table if action.table_id == -2 else action.table_id,
            )
            result.updates.append(
                StateUpdate(action=resolved_delete, trigger_fields=dict(fields),
                            slow_path=True)
            )
            return working, None, decided
        if isinstance(action, RegisterWrite):
            resolved_write = RegisterWrite(
                array=action.array,
                index=resolve_value(action.index, fields),
                value=resolve_value(action.value, fields),
            )
            result.updates.append(
                StateUpdate(action=resolved_write, trigger_fields=dict(fields),
                            slow_path=False)
            )
            return working, None, decided
        if isinstance(action, Notify):
            carried = dict(action.baked)
            carried.update(
                {name: fields[name] for name in action.carry if name in fields}
            )
            result.alerts.append(
                Alert(message=action.message, carried=carried,
                      packet_uid=working.uid)
            )
            return working, None, decided
        raise PipelineError(f"unknown action {action!r}")

    def _apply_miss_policy(self, packet: Packet, result: PipelineResult) -> None:
        if self.miss_policy is MissPolicy.DROP:
            result.dropped = True
            result.drop_reason = "table-miss"
        elif self.miss_policy is MissPolicy.FLOOD:
            result.flooded = True
        else:
            result.to_controller = True
            result.controller_reason = "table-miss"

    def _run_egress(
        self,
        packet: Packet,
        in_port: int,
        now: float,
        meta: Mapping[str, object],
        result: PipelineResult,
    ) -> None:
        """Per-output egress matching with out_port metadata visible.

        Faithful to OpenFlow 1.5: runs only for packets that are actually
        departing; drops never enter the egress stage.
        """
        if not self.egress_tables or not result.outputs:
            return
        reprocessed: List[Tuple[int, Packet]] = []
        for out_port, out_packet in result.outputs:
            working = out_packet
            for table in self.egress_tables:
                result.tables_traversed += 1
                self.meter.charge_lookup()
                fields = self._packet_fields(working, {**meta, "out_port": out_port})
                rule = table.lookup(fields, now)
                if self._telemetry:
                    self._note_lookup(table.table_id, rule is not None)
                if rule is None:
                    continue
                result.matched_rules.append(rule)
                for action in rule.actions:
                    if isinstance(action, SetField):
                        working = rewrite_field(working, action.name, action.value)
                    elif isinstance(action, Notify):
                        carried = dict(action.baked)
                        carried.update({
                            name: fields[name]
                            for name in action.carry
                            if name in fields
                        })
                        result.alerts.append(
                            Alert(message=action.message, carried=carried,
                                  packet_uid=working.uid)
                        )
                    elif isinstance(action, DeleteRules):
                        result.updates.append(
                            StateUpdate(
                                action=DeleteRules(
                                    cookie=keyed_cookie(
                                        action.cookie, action.cookie_fields,
                                        fields),
                                    table_id=(table.table_id
                                              if action.table_id == -2
                                              else action.table_id),
                                ),
                                trigger_fields=dict(fields),
                                slow_path=True,
                            )
                        )
                    elif isinstance(action, (Learn, RegisterWrite)):
                        update_fields = dict(fields)
                        if isinstance(action, Learn):
                            result.updates.append(
                                StateUpdate(
                                    action=_resolve_learn(
                                        action, update_fields, table.table_id),
                                    trigger_fields=update_fields,
                                    slow_path=True,
                                )
                            )
                        else:
                            result.updates.append(
                                StateUpdate(
                                    action=RegisterWrite(
                                        array=action.array,
                                        index=resolve_value(
                                            action.index, update_fields),
                                        value=resolve_value(
                                            action.value, update_fields),
                                    ),
                                    trigger_fields=update_fields,
                                    slow_path=False,
                                )
                            )
                    elif isinstance(action, Drop):
                        working = None  # type: ignore[assignment]
                        break
                if working is None:
                    break
            if working is not None:
                reprocessed.append((out_port, working))
        result.outputs = reprocessed

    # -- expiry -------------------------------------------------------------
    def expire(self, now: float) -> List[ExpiredRule]:
        """Expire rules across all tables; returns expirations in order."""
        expired: List[ExpiredRule] = []
        for table in self.tables + self.egress_tables:
            expired.extend(table.expire(now))
        expired.sort(key=lambda e: (e.deadline, e.table_id, e.rule.rule_id))
        return expired

    def next_deadline(self) -> Optional[float]:
        deadlines = [
            d
            for d in (t.next_deadline() for t in self.tables + self.egress_tables)
            if d is not None
        ]
        return min(deadlines) if deadlines else None
