"""Register state: the fast-path alternative to flow-rule state.

Sec. 3.3 of the paper concludes that Varanus "remains intractable so long
as it stores and updates its state using OpenFlow rules, which cannot be
modified at line rate; a scalable implementation would need more rapid
state mechanisms, such as the register-based approach in P4."

This module provides the two register flavours the surveyed architectures
use, with an explicit **cost model** so the benchmarks can contrast
slow-path rule updates against fast-path register updates:

* :class:`RegisterArray` — P4/POF-style fixed-width arrays indexed by a
  hash of header fields (per-flow registers);
* :class:`GlobalArrays` — SNAP-style named persistent global arrays keyed
  by arbitrary hashable tuples.

Costs are abstract "update ticks" accumulated in a :class:`StateCostMeter`;
the simulation converts ticks to virtual latency when a switch runs in
inline mode (Feature 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

# Relative costs, calibrated to the paper's qualitative claim: rule-table
# modification (slow path: flow_mod through OVS/OpenFlow machinery) is
# orders of magnitude more expensive than a register write (fast path).
FAST_PATH_UPDATE_COST = 1
SLOW_PATH_UPDATE_COST = 250
TABLE_LOOKUP_COST = 2


@dataclass
class StateCostMeter:
    """Accumulates abstract processing cost for one switch."""

    lookup_ticks: int = 0
    fast_update_ticks: int = 0
    slow_update_ticks: int = 0
    lookups: int = 0
    fast_updates: int = 0
    slow_updates: int = 0

    def charge_lookup(self, tables_traversed: int = 1) -> None:
        self.lookups += tables_traversed
        self.lookup_ticks += TABLE_LOOKUP_COST * tables_traversed

    def charge_fast_update(self, count: int = 1) -> None:
        self.fast_updates += count
        self.fast_update_ticks += FAST_PATH_UPDATE_COST * count

    def charge_slow_update(self, count: int = 1) -> None:
        self.slow_updates += count
        self.slow_update_ticks += SLOW_PATH_UPDATE_COST * count

    @property
    def total_ticks(self) -> int:
        return self.lookup_ticks + self.fast_update_ticks + self.slow_update_ticks

    def reset(self) -> None:
        self.lookup_ticks = self.fast_update_ticks = self.slow_update_ticks = 0
        self.lookups = self.fast_updates = self.slow_updates = 0


class RegisterArray:
    """A fixed-size integer register array (P4-style).

    Indexing is modular, mirroring hardware hash-index truncation; cells
    default to zero.  Every write charges the meter at fast-path cost.
    """

    def __init__(self, name: str, size: int, meter: Optional[StateCostMeter] = None):
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size!r}")
        self.name = name
        self.size = size
        self._cells: List[int] = [0] * size
        self._meter = meter

    def _slot(self, index: int) -> int:
        return int(index) % self.size

    def read(self, index: int) -> int:
        return self._cells[self._slot(index)]

    def write(self, index: int, value: int) -> None:
        self._cells[self._slot(index)] = int(value)
        if self._meter is not None:
            self._meter.charge_fast_update()

    def increment(self, index: int, delta: int = 1) -> int:
        slot = self._slot(index)
        self._cells[slot] += delta
        if self._meter is not None:
            self._meter.charge_fast_update()
        return self._cells[slot]

    def clear(self) -> None:
        self._cells = [0] * self.size

    def nonzero(self) -> Iterator[Tuple[int, int]]:
        """Yield (index, value) for populated cells."""
        for i, v in enumerate(self._cells):
            if v:
                yield i, v


class GlobalArrays:
    """SNAP-style named persistent arrays keyed by hashable tuples.

    Unlike :class:`RegisterArray`, keys are exact (no hash collisions) and
    values are arbitrary — SNAP's abstraction is a map, the compiler's job
    is to realize it on registers.  Writes still charge fast-path cost:
    SNAP targets register-machine backends.
    """

    def __init__(self, meter: Optional[StateCostMeter] = None) -> None:
        self._arrays: Dict[str, Dict[Hashable, object]] = {}
        self._meter = meter

    def array(self, name: str) -> Dict[Hashable, object]:
        return self._arrays.setdefault(name, {})

    def read(self, name: str, key: Hashable, default: object = 0) -> object:
        return self.array(name).get(key, default)

    def write(self, name: str, key: Hashable, value: object) -> None:
        self.array(name)[key] = value
        if self._meter is not None:
            self._meter.charge_fast_update()

    def delete(self, name: str, key: Hashable) -> bool:
        arr = self.array(name)
        if key in arr:
            del arr[key]
            if self._meter is not None:
                self._meter.charge_fast_update()
            return True
        return False

    def keys(self, name: str) -> Tuple[Hashable, ...]:
        return tuple(self.array(name).keys())

    def clear(self, name: Optional[str] = None) -> None:
        if name is None:
            self._arrays.clear()
        else:
            self._arrays.pop(name, None)
