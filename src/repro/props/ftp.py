"""FTP property — Table 1 (taken by the paper from FAST).

"Data L4 port matches L4 port given in control stream."  In active-mode
FTP the client advertises, over the control connection, the endpoint the
server's data connection must target (a ``PORT`` command, or the server
advertises via a ``227`` passive reply).  The violation: the subsequent
data connection between the same pair targets a *different* port (F6
negative match at L7 parse depth).  Instance identification is symmetric —
the data connection runs in the reverse direction of the control line that
advertised the endpoint.
"""

from __future__ import annotations

from typing import Mapping

from ..core.refs import Bind, EventKind, EventPattern, FieldEq, FieldNe, Predicate, Var
from ..core.spec import Observe, PropertySpec
from .common import is_tcp_syn


def _advertises_endpoint() -> Predicate:
    return Predicate(
        lambda fields, env: "ftp.data_port" in fields,
        "FTP control line advertises a data endpoint",
        fields_used=("ftp.data_port", "ftp.line"),
    )


def ftp_data_port_matches(name: str = "ftp-data-port-matches") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "The data connection's L4 port matches the port advertised in "
            "the control stream"
        ),
        stages=(
            Observe(
                "advertised",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(_advertises_endpoint(),),
                    binds=(
                        Bind("client", "ipv4.src"),
                        Bind("server", "ipv4.dst"),
                        Bind("dport", "ftp.data_port"),
                    ),
                ),
            ),
            Observe(
                "wrong_data_port",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        # Active mode: the server opens the data connection
                        # back toward the client — the flow is inverted.
                        FieldEq("ipv4.src", Var("server")),
                        FieldEq("ipv4.dst", Var("client")),
                        is_tcp_syn(),
                        FieldNe("tcp.dst", Var("dport")),
                    ),
                ),
            ),
        ),
        key_vars=("client", "server"),
        violation_message=(
            "data connection opened to a port other than the advertised one"
        ),
    )
