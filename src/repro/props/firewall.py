"""Stateful-firewall properties — the worked example of Sec. 2.1, in the
three refinements the paper walks through.

* :func:`firewall_basic` — "After seeing traffic from internal host A to
  external host B, packets from B to A are not dropped."  Two
  observations; unsound against real firewalls with state expiry.

* :func:`firewall_timed` — "...for T seconds after seeing traffic from A to
  B" (Feature 3): the monitor keeps a separate timer per (A, B) pair,
  reset whenever a new A-to-B packet is seen.

* :func:`firewall_with_close` — "...for T seconds, or until the connection
  is closed" (Feature 4): a close (FIN/RST in either direction) discharges
  the obligation — the instance is cancelled, so a later drop is correct
  behaviour, not a violation.

* :func:`firewall_drops_after_close` — the converse check: once the
  connection closed, return traffic must be *dropped*; forwarding it is
  the violation (catches the ``ignore_close`` firewall fault).
"""

from __future__ import annotations

from ..core.refs import Bind, EventKind, EventPattern, FieldEq, Var
from ..core.spec import Observe, PropertySpec
from .common import internal_to_external, is_tcp_close


def _outbound_stage() -> Observe:
    return Observe(
        "outbound",
        EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(internal_to_external(),),
            binds=(Bind("A", "ipv4.src"), Bind("B", "ipv4.dst")),
        ),
    )


def _return_drop_pattern() -> EventPattern:
    return EventPattern(
        kind=EventKind.DROP,
        guards=(FieldEq("ipv4.src", Var("B")), FieldEq("ipv4.dst", Var("A"))),
    )


def _close_patterns() -> tuple:
    """Connection close observed in either direction (FIN or RST)."""
    return (
        EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(
                FieldEq("ipv4.src", Var("A")),
                FieldEq("ipv4.dst", Var("B")),
                is_tcp_close(),
            ),
        ),
        EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(
                FieldEq("ipv4.src", Var("B")),
                FieldEq("ipv4.dst", Var("A")),
                is_tcp_close(),
            ),
        ),
    )


def firewall_basic(name: str = "firewall-basic") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "After seeing traffic from internal A to external B, packets "
            "from B to A are not dropped"
        ),
        stages=(
            _outbound_stage(),
            Observe("return_dropped", _return_drop_pattern()),
        ),
        key_vars=("A", "B"),
        violation_message="valid return traffic was dropped",
    )


def firewall_timed(T: float = 30.0, name: str = "firewall-timed") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            f"For {T}s after traffic from A to B (timer reset on each new "
            "A->B packet), packets from B to A are not dropped"
        ),
        stages=(
            _outbound_stage(),
            Observe("return_dropped", _return_drop_pattern(), within=T),
        ),
        key_vars=("A", "B"),
        violation_message="return traffic dropped inside the pinhole window",
    )


def firewall_with_close(
    T: float = 30.0, name: str = "firewall-with-close"
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            f"For {T}s after traffic from A to B, or until the connection "
            "is closed, packets from B to A are not dropped"
        ),
        stages=(
            _outbound_stage(),
            Observe(
                "return_dropped",
                _return_drop_pattern(),
                within=T,
                unless=_close_patterns(),
            ),
        ),
        key_vars=("A", "B"),
        violation_message=(
            "return traffic dropped although the pinhole was live and the "
            "connection had not closed"
        ),
    )


def firewall_drops_after_close(
    name: str = "firewall-drops-after-close",
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "After either side closes the connection, B-to-A packets are "
            "dropped until A re-establishes it"
        ),
        stages=(
            _outbound_stage(),
            Observe(
                "closed",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        FieldEq("ipv4.src", Var("A")),
                        FieldEq("ipv4.dst", Var("B")),
                        is_tcp_close(),
                    ),
                ),
            ),
            Observe(
                "stale_forward",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        FieldEq("ipv4.src", Var("B")),
                        FieldEq("ipv4.dst", Var("A")),
                    ),
                ),
                unless=(
                    # A re-establishes: forwarding is legitimate again.
                    EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=(
                            FieldEq("ipv4.src", Var("A")),
                            FieldEq("ipv4.dst", Var("B")),
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("A", "B"),
        violation_message="return traffic forwarded after the connection closed",
    )
