"""Load-balancing properties — Table 1's load-balancing group.

All three are **symmetric** matches: the flow's 5-tuple binds at the first
observation and return-direction events (the connection closing from the
server side) match it inverted.

* :func:`lb_hashed_port` — "New flows go to hashed port": a new flow's
  first packet must leave toward the backend the hash function selects;
  the same packet (F5) egressing anywhere else is the violation.  The
  expectation lapses if the flow closes first (F4 obligation, per the
  paper's marking).

* :func:`lb_round_robin_port` — "New flows go to round-robin port": as
  above but the expectation comes from a round-robin counter tracked as
  auxiliary monitor state (:class:`RoundRobinExpectation`).

* :func:`lb_sticky_port` — "No change in port until flow closed": once a
  flow's packets leave toward backend port b, a later packet of the same
  flow leaving toward any other port (F6 negative match) is the violation,
  unless the flow closed in between.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..apps.load_balancer import flow_hash
from ..core.refs import Bind, Const, EventKind, EventPattern, FieldEq, FieldNe, Predicate, Var
from ..core.spec import Observe, PropertySpec
from ..packet.addresses import IPv4Address
from .common import is_not_tcp_close, is_tcp_close, is_tcp_syn


def _flow_binds() -> Tuple[Bind, ...]:
    return (
        Bind("cip", "ipv4.src"),
        Bind("cport", "tcp.src"),
        Bind("vip", "ipv4.dst"),
        Bind("vport", "tcp.dst"),
    )


def _forward_flow_guards() -> Tuple:
    return (
        FieldEq("ipv4.src", Var("cip")),
        FieldEq("tcp.src", Var("cport")),
        FieldEq("ipv4.dst", Var("vip")),
        FieldEq("tcp.dst", Var("vport")),
    )


def _close_either_direction() -> Tuple[EventPattern, ...]:
    """FIN/RST observed client-to-service or service-to-client."""
    return (
        EventPattern(
            kind=EventKind.ARRIVAL,
            guards=_forward_flow_guards() + (is_tcp_close(),),
        ),
        EventPattern(
            kind=EventKind.ARRIVAL,
            guards=(
                FieldEq("ipv4.dst", Var("cip")),
                FieldEq("tcp.dst", Var("cport")),
                is_tcp_close(),
            ),
        ),
    )


def lb_hashed_port(
    vip: IPv4Address,
    backend_ports: Sequence[int],
    name: str = "lb-hashed-port",
) -> PropertySpec:
    backends = tuple(backend_ports)

    def wrong_backend(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        key = (env["cip"], env["cport"], env["vip"], env["vport"], 6)
        expected = backends[flow_hash(key, len(backends))]
        return fields.get("out_port") != expected

    return PropertySpec(
        name=name,
        description="New flows go to the 5-tuple-hashed backend port",
        stages=(
            Observe(
                "new_flow",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.dst", Const(vip)), is_tcp_syn()),
                    binds=_flow_binds(),
                ),
            ),
            Observe(
                "wrong_backend",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="new_flow",
                    guards=(
                        Predicate(
                            wrong_backend,
                            "egress port differs from hashed backend",
                            fields_used=("out_port",),
                        ),
                    ),
                ),
                unless=_close_either_direction(),
            ),
        ),
        key_vars=("cip", "cport", "vip", "vport"),
        violation_message="new flow sent to a backend other than the hashed one",
        # F4 •: the monitor awaits the flow's (possibly never-occurring)
        # first egress — per the paper's marking for this row.
        obligation_override=True,
    )


class RoundRobinExpectation:
    """Auxiliary monitor state: the backend round-robin should pick next.

    Attach :meth:`observe` as a tap *before* the monitor; it advances the
    expected pointer whenever a fresh flow's SYN toward the VIP arrives, so
    the property's predicate knows which backend that flow was owed.
    """

    def __init__(self, vip: IPv4Address, backend_ports: Sequence[int]) -> None:
        self.vip = vip
        self.backends = tuple(backend_ports)
        self._next = 0
        self.expected_by_flow: Dict[Tuple, int] = {}

    def observe(self, event) -> None:
        from ..switch.events import PacketArrival

        if not isinstance(event, PacketArrival):
            return
        five = event.packet.five_tuple()
        if five is None or five[2] != self.vip:
            return
        from ..packet.headers import TCP

        tcp = event.packet.find(TCP)
        if tcp is None or not tcp.is_syn:
            return
        if five not in self.expected_by_flow:
            self.expected_by_flow[five] = self.backends[
                self._next % len(self.backends)
            ]
            self._next += 1

    def expected(self, env: Mapping[str, object]) -> Optional[int]:
        key = (env["cip"], env["cport"], env["vip"], env["vport"], 6)
        return self.expected_by_flow.get(key)


def lb_round_robin_port(
    vip: IPv4Address,
    backend_ports: Sequence[int],
    expectation: RoundRobinExpectation,
    name: str = "lb-round-robin-port",
) -> PropertySpec:
    def wrong_backend(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        expected = expectation.expected(env)
        return expected is not None and fields.get("out_port") != expected

    return PropertySpec(
        name=name,
        description="New flows go to the round-robin-selected backend port",
        stages=(
            Observe(
                "new_flow",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("ipv4.dst", Const(vip)), is_tcp_syn()),
                    binds=_flow_binds(),
                ),
            ),
            Observe(
                "wrong_backend",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="new_flow",
                    guards=(
                        Predicate(
                            wrong_backend,
                            "egress port differs from round-robin backend",
                            fields_used=("out_port",),
                        ),
                    ),
                ),
                unless=_close_either_direction(),
            ),
        ),
        key_vars=("cip", "cport", "vip", "vport"),
        violation_message="new flow sent to a backend out of round-robin order",
        obligation_override=True,
    )


def lb_sticky_port(
    vip: IPv4Address,
    name: str = "lb-sticky-port",
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description="A flow's backend port does not change until the flow closes",
        stages=(
            Observe(
                "pinned",
                EventPattern(
                    kind=EventKind.EGRESS,
                    # A *live* flow packet pins the backend; a departing
                    # FIN/RST must not re-pin a flow that just closed.
                    guards=(FieldEq("ipv4.dst", Const(vip)),
                            is_not_tcp_close()),
                    binds=_flow_binds() + (Bind("backend", "out_port"),),
                ),
            ),
            Observe(
                "next_packet",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=_forward_flow_guards(),
                ),
                unless=_close_either_direction(),
            ),
            Observe(
                "moved",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="next_packet",
                    guards=(FieldNe("out_port", Var("backend")),),
                ),
                unless=_close_either_direction()
                + (
                    # The watched packet leaving on the *pinned* backend is
                    # correct behaviour: retire this instance (the same
                    # egress event re-creates one at stage 0, so the next
                    # packet of the flow is watched afresh).
                    EventPattern(
                        kind=EventKind.EGRESS,
                        same_packet_as="next_packet",
                        guards=(FieldEq("out_port", Var("backend")),),
                    ),
                ),
            ),
        ),
        key_vars=("cip", "cport", "vip", "vport"),
        violation_message="flow moved to a different backend before closing",
        # Paper leaves Obligation blank here: the violation trace is purely
        # positive; the closes are mere cancellations.
        obligation_override=False,
    )
