"""Shared guard predicates and helpers for the property catalog."""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.refs import Predicate
from ..packet.addresses import IPv4Address
from ..packet.dhcp import DhcpMessageType
from ..packet.headers import TCPFlags


def internal_to_external() -> Predicate:
    """Source is RFC1918-private, destination is not: outbound traffic."""

    def check(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        src = fields.get("ipv4.src")
        dst = fields.get("ipv4.dst")
        return (
            isinstance(src, IPv4Address)
            and isinstance(dst, IPv4Address)
            and src.is_private
            and not dst.is_private
        )

    return Predicate(check, "internal source, external destination",
                     fields_used=("ipv4.src", "ipv4.dst"))


def tcp_flag_set(flag: int, description: str) -> Predicate:
    def check(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        flags = fields.get("tcp.flags")
        return isinstance(flags, int) and bool(flags & flag)

    return Predicate(check, description, fields_used=("tcp.flags",))


def is_tcp_syn() -> Predicate:
    return tcp_flag_set(TCPFlags.SYN, "TCP SYN set")


def is_tcp_close() -> Predicate:
    return tcp_flag_set(TCPFlags.FIN | TCPFlags.RST, "TCP FIN or RST set")


def is_not_tcp_close() -> Predicate:
    def check(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        flags = fields.get("tcp.flags")
        return isinstance(flags, int) and not (
            flags & (TCPFlags.FIN | TCPFlags.RST)
        )

    return Predicate(check, "TCP segment is not closing the connection",
                     fields_used=("tcp.flags",))


def dhcp_msg(msg_type: int, description: str) -> Predicate:
    def check(fields: Mapping[str, object], env: Mapping[str, object]) -> bool:
        return fields.get("dhcp.msg_type") == msg_type

    return Predicate(check, description, fields_used=("dhcp.msg_type",))


def is_dhcp_request() -> Predicate:
    return dhcp_msg(DhcpMessageType.REQUEST, "DHCP REQUEST")


def is_dhcp_ack() -> Predicate:
    return dhcp_msg(DhcpMessageType.ACK, "DHCP ACK")


def is_dhcp_release() -> Predicate:
    return dhcp_msg(DhcpMessageType.RELEASE, "DHCP RELEASE")
