"""Port-knocking properties — Table 1 (taken by the paper from Varanus).

Both properties are **exact** matches: every stage constrains the same
knocker address value, and L4 ports appear only as constants of the knock
sequence.

* :func:`knocking_invalidated` — "Intervening guesses invalidate sequence":
  after a correct first knock, a wrong guess, and the remainder of the
  sequence, the gateway must NOT grant access; a forwarded packet to the
  protected port is the violation.

* :func:`knocking_recognized` — "Recognize valid sequence": after the
  complete correct sequence, a connection attempt to the protected port
  must not be dropped.  An intervening wrong guess legitimately cancels
  the expectation (the ``unless``), and watching for the eventual
  connection attempt is a persistent obligation (F4 •, per the paper).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.refs import Bind, Const, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Observe, PropertySpec
from ..switch.events import EgressAction


def _knock(port: int, first: bool = False) -> EventPattern:
    guards: Tuple = (FieldEq("tcp.dst", Const(port)),)
    if not first:
        guards = (FieldEq("ipv4.src", Var("knocker")),) + guards
    binds = (Bind("knocker", "ipv4.src"),) if first else ()
    return EventPattern(kind=EventKind.ARRIVAL, guards=guards, binds=binds)


def _wrong_guess(sequence: Sequence[int], next_port: int, protected: int) -> EventPattern:
    """A knock from the same source that is not the expected next port (nor
    the protected port itself)."""
    return EventPattern(
        kind=EventKind.ARRIVAL,
        guards=(
            FieldEq("ipv4.src", Var("knocker")),
            FieldNe("tcp.dst", Const(next_port)),
            FieldNe("tcp.dst", Const(protected)),
        ),
    )


def knocking_invalidated(
    sequence: Sequence[int] = (7001, 7002),
    protected: int = 22,
    name: str = "knocking-invalidated",
) -> PropertySpec:
    if len(sequence) != 2:
        raise ValueError("the canonical encoding uses a two-knock sequence")
    k1, k2 = sequence
    return PropertySpec(
        name=name,
        description="Intervening guesses invalidate the knock sequence",
        stages=(
            Observe("first_knock", _knock(k1, first=True)),
            Observe("wrong_guess", _wrong_guess(sequence, k2, protected)),
            Observe("second_knock", _knock(k2)),
            Observe(
                "access_granted",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(protected)),
                    ),
                    egress_action=EgressAction.UNICAST,
                ),
            ),
        ),
        key_vars=("knocker",),
        violation_message=(
            "access granted although a wrong guess invalidated the sequence"
        ),
        # Paper leaves Obligation blank for this row: the violation trace is
        # purely positive observations.
        obligation_override=False,
    )


def knocking_recognized(
    sequence: Sequence[int] = (7001, 7002),
    protected: int = 22,
    name: str = "knocking-recognized",
) -> PropertySpec:
    if len(sequence) != 2:
        raise ValueError("the canonical encoding uses a two-knock sequence")
    k1, k2 = sequence
    return PropertySpec(
        name=name,
        description="A valid knock sequence earns access to the protected port",
        stages=(
            Observe("first_knock", _knock(k1, first=True)),
            Observe(
                "second_knock",
                _knock(k2),
                unless=(
                    # A wrong guess in between legitimately invalidates.
                    _wrong_guess(sequence, k2, protected),
                ),
            ),
            Observe(
                "access_denied",
                EventPattern(
                    kind=EventKind.DROP,
                    guards=(
                        FieldEq("ipv4.src", Var("knocker")),
                        FieldEq("tcp.dst", Const(protected)),
                    ),
                ),
                unless=(
                    # A wrong guess after completing the sequence resets it
                    # on a strict gateway; the expectation lapses.
                    _wrong_guess(sequence, k2, protected),
                ),
            ),
        ),
        key_vars=("knocker",),
        violation_message=(
            "connection dropped although the valid knock sequence completed"
        ),
        # F4 •: the monitor holds a pending access expectation per knocker.
        obligation_override=True,
    )
