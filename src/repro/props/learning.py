"""Learning-switch properties (Sec. 1 and the Feature 8 multiple-match
example).

* :func:`learned_unicast_port` — "Once a destination D is learned, packets
  to D are unicast on the appropriate port."  Violation: a packet from D
  arrives on port p (learning D), then a packet addressed to D leaves on
  some port other than p — which covers both mis-learned unicast and
  flooding (flood copies egress on wrong ports).

* :func:`learned_no_flood` — the flood-specific variant, matching on the
  switch's own output decision (``egress.action == FLOOD``): the
  metadata-matching capability Sec. 3.2 identifies as a critical gap.

* :func:`link_down_clears_learning` — "link-down messages delete the set of
  learned destinations": after any port goes down, a unicast to a
  previously-learned D (with no intervening re-learning packet from D) is a
  violation.  The out-of-band stage has no instance-distinguishing guards,
  so one link-down event advances *every* live instance — multiple match.
"""

from __future__ import annotations

from ..core.refs import Bind, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Absent, Observe, PropertySpec
from ..switch.events import EgressAction, OobKind


def learned_unicast_port(name: str = "learned-unicast-port") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "Once a destination D is learned on port p, packets to D egress "
            "only on p"
        ),
        stages=(
            Observe(
                "learn",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("D", "eth.src"), Bind("p", "in_port")),
                ),
            ),
            Observe(
                "bad_egress",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        FieldEq("eth.dst", Var("D")),
                        FieldNe("out_port", Var("p")),
                    ),
                ),
            ),
        ),
        key_vars=("D",),
        violation_message="packet to learned destination left on the wrong port",
    )


def learned_no_flood(name: str = "learned-no-flood") -> PropertySpec:
    return PropertySpec(
        name=name,
        description="Once a destination D is learned, packets to D are not flooded",
        stages=(
            Observe(
                "learn",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("D", "eth.src"), Bind("p", "in_port")),
                ),
            ),
            Observe(
                "flooded",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("D")),),
                    egress_action=EgressAction.FLOOD,
                ),
            ),
        ),
        key_vars=("D",),
        violation_message="packet to learned destination was flooded",
    )


def link_down_clears_learning(name: str = "link-down-clears-learning") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "A link-down message deletes the set of learned destinations: "
            "afterwards, unicasting to a previously-learned D without "
            "re-learning is wrong"
        ),
        stages=(
            Observe(
                "learn",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    binds=(Bind("D", "eth.src"),),
                ),
            ),
            # No guards reference the instance: one link-down advances every
            # learned-D instance — the paper's multiple-match case.
            Observe(
                "link_down",
                EventPattern(kind=EventKind.OOB, oob_kind=OobKind.PORT_DOWN),
            ),
            Observe(
                "stale_unicast",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(FieldEq("eth.dst", Var("D")),),
                    egress_action=EgressAction.UNICAST,
                ),
                unless=(
                    # A fresh packet from D re-learns it; the instance no
                    # longer represents stale state.
                    EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=(FieldEq("eth.src", Var("D")),),
                    ),
                ),
            ),
        ),
        key_vars=("D",),
        violation_message=(
            "unicast to a destination whose learning should have been "
            "cleared by link-down"
        ),
    )
