"""DHCP + ARP proxy properties — Table 1's wandering-match group.

These are the properties the paper uses to motivate **wandering match**
(Feature 8): observations carrying *different protocol* fields (DHCP leases
and ARP traffic) must map to the same monitor instance.

* :func:`arp_cache_preloaded` — "Pre-load ARP cache with leased addresses":
  once a lease for IP is ACKed to a client, an ARP request for IP (from
  anyone other than the lease holder — F6) must be answered with the
  *leased* MAC within T; the timer firing without a correct reply is the
  violation (F7).

* :func:`no_unfounded_reply` — "No direct reply if neither pre-loaded nor
  prior reply seen": the switch answering an ARP request from its own cache
  (a switch-originated egress) for an address it has no DHCP-lease or
  prior-reply knowledge of is the violation.  Knowledge is consulted via a
  cross-protocol :class:`LeaseKnowledge` predicate — the wandering data
  flow.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from ..core.refs import Bind, Const, EventKind, EventPattern, FieldEq, FieldNe, Predicate, Var
from ..core.spec import Absent, Observe, PropertySpec
from ..packet.addresses import IPv4Address, MACAddress
from ..switch.events import PacketArrival, PacketEgress
from .arp import _is_arp_reply, _is_arp_request
from .common import is_dhcp_ack


class LeaseKnowledge:
    """Auxiliary monitor state: addresses known via DHCP leases or prior
    ARP replies.  Attach :meth:`observe` as a tap before the monitor."""

    def __init__(self) -> None:
        self.known: Set[IPv4Address] = set()

    def observe(self, event) -> None:
        if not isinstance(event, (PacketArrival, PacketEgress)):
            return
        from ..packet.dhcp import Dhcp
        from ..packet.headers import Arp

        dhcp = event.packet.find(Dhcp)
        if dhcp is not None and dhcp.is_ack:
            self.known.add(dhcp.yiaddr)
            return
        arp = event.packet.find(Arp)
        if arp is not None and arp.is_reply and isinstance(event, PacketArrival):
            # A genuine reply arriving from a host teaches the mapping; the
            # switch's own injected replies (which never *arrive*) do not.
            self.known.add(arp.sender_ip)

    def unknown_predicate(self) -> Predicate:
        return Predicate(
            lambda fields, env: fields.get("arp.target_ip") not in self.known,
            "no lease or prior reply for the requested address",
            fields_used=("arp.target_ip",),
            history_fields=("dhcp.yiaddr",),
        )


def arp_cache_preloaded(
    T: float = 1.0, name: str = "arp-cache-preloaded"
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "The ARP cache is pre-loaded with leased addresses: requests "
            "for a leased address are answered with the leased MAC"
        ),
        stages=(
            Observe(
                "leased",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(is_dhcp_ack(),),
                    binds=(
                        Bind("ip", "dhcp.yiaddr"),
                        Bind("holder_mac", "dhcp.client_mac"),
                    ),
                ),
            ),
            Observe(
                "asked",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        _is_arp_request(),
                        # dhcp.yiaddr -> arp.target_ip: the wandering edge.
                        FieldEq("arp.target_ip", Var("ip")),
                        # Hosts don't resolve their own address: requests
                        # from the lease holder itself are out of scope.
                        FieldNe("arp.sender_mac", Var("holder_mac")),
                    ),
                    binds=(Bind("asker", "arp.sender_mac"),),
                ),
            ),
            Absent(
                "no_correct_reply",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        _is_arp_reply(),
                        FieldEq("arp.sender_ip", Var("ip")),
                        FieldEq("arp.sender_mac", Var("holder_mac")),
                        FieldEq("arp.target_mac", Var("asker")),
                    ),
                ),
                within=T,
                semantic_deadline=False,
            ),
        ),
        key_vars=("ip", "holder_mac"),
        violation_message=(
            "ARP request for a leased address was not answered with the "
            "leased MAC in time"
        ),
        # Paper leaves Obligation blank for this row.
        obligation_override=False,
    )


def no_unfounded_reply(
    knowledge: LeaseKnowledge, name: str = "no-unfounded-reply"
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "No direct ARP reply if neither a lease nor a prior reply was "
            "seen for the address"
        ),
        stages=(
            Observe(
                "unknown_asked",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(_is_arp_request(), knowledge.unknown_predicate()),
                    binds=(
                        Bind("ip", "arp.target_ip"),
                        Bind("asker", "arp.sender_mac"),
                    ),
                ),
            ),
            Observe(
                "unfounded_reply",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        _is_arp_reply(),
                        FieldEq("arp.sender_ip", Var("ip")),
                        FieldEq("arp.target_mac", Var("asker")),
                        # A switch-originated (direct) reply: injected
                        # packets carry in_port 0, forwarded ones don't.
                        FieldEq("in_port", Const(0)),
                    ),
                ),
                unless=(
                    # Knowledge arriving in between legitimizes a reply:
                    # a lease ACK for the address...
                    EventPattern(
                        kind=EventKind.EGRESS,
                        guards=(
                            is_dhcp_ack(),
                            Predicate(
                                lambda fields, env: fields.get("dhcp.yiaddr")
                                == env.get("ip"),
                                "lease granted for the asked address",
                                fields_used=("dhcp.yiaddr",),
                            ),
                        ),
                    ),
                    # ...or a genuine reply arriving from the owner.
                    EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=(
                            _is_arp_reply(),
                            FieldEq("arp.sender_ip", Var("ip")),
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("ip", "asker"),
        violation_message=(
            "the switch answered an ARP request with no lease or prior "
            "reply to justify it"
        ),
        # F4 •, per the paper: the monitor holds, per request, the pending
        # judgement of how the switch responds.
        obligation_override=True,
    )
