"""ARP cache proxy properties — Sec. 2.3 and Table 1's first group
(taken by the paper from Varanus).

* :func:`arp_known_not_forwarded` — "Requests for known addresses are not
  forwarded."  An address becomes known when a reply resolving it is seen
  leaving the switch; a later *request* for it leaving the switch is the
  violation.  Instance matching is **exact**: the same address value is
  matched in both stages (no directional pair is inverted).

* :func:`arp_unknown_forwarded` — "Requests for unknown addresses are
  forwarded."  Stage 0 catches an arriving request whose target is not in
  the proxy's knowledge (a predicate over the knowledge the monitor has
  accumulated); the violation is *negative*: T seconds elapse without the
  same packet leaving the switch (Feature 7 timeout action + Feature 5
  packet identity).  The obligation is discharged if the request does get
  forwarded.  The deadline is a monitoring practicality, not part of the
  property statement — so it does not require ordinary timeouts (F3).

* :func:`arp_reply_within` — the Sec. 2.3 worked example: "If the switch
  receives a request for a known MAC address, it will send a reply within
  T seconds."  The ``refresh='never'`` default is load-bearing: a
  never-answered request storm arriving every T-1 seconds must still be
  flagged (re-requests must NOT reset the timer).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Set

from ..core.refs import Bind, EventKind, EventPattern, FieldEq, Predicate, Var
from ..core.spec import Absent, Observe, PropertySpec
from ..packet.addresses import IPv4Address
from ..switch.events import PacketArrival, PacketEgress


class ArpKnowledge:
    """Auxiliary monitor state: which IP addresses are 'known'.

    Attach :meth:`observe` as a switch tap *before* the monitor so the
    knowledge is current when the monitor's predicates consult it.  An
    address becomes known when an ARP reply resolving it traverses the
    switch (arrival or egress).
    """

    def __init__(self) -> None:
        self.known: Set[IPv4Address] = set()

    def observe(self, event) -> None:
        packet = getattr(event, "packet", None)
        if packet is None or not isinstance(event, (PacketArrival, PacketEgress)):
            return
        from ..packet.headers import Arp

        arp = packet.find(Arp)
        if arp is not None and arp.is_reply:
            self.known.add(arp.sender_ip)

    def knows(self, ip: object) -> bool:
        return ip in self.known

    def known_predicate(self) -> Predicate:
        return Predicate(
            lambda fields, env: self.knows(fields.get("arp.target_ip")),
            "requested address is known",
            fields_used=("arp.target_ip",),
            history_fields=("arp.sender_ip",),
        )

    def unknown_predicate(self) -> Predicate:
        return Predicate(
            lambda fields, env: not self.knows(fields.get("arp.target_ip")),
            "requested address is unknown",
            fields_used=("arp.target_ip",),
            history_fields=("arp.sender_ip",),
        )


def _is_arp_request() -> Predicate:
    from ..packet.headers import ArpOp

    return Predicate(
        lambda fields, env: fields.get("arp.op") == ArpOp.REQUEST,
        "ARP request",
        fields_used=("arp.op",),
    )


def _is_arp_reply() -> Predicate:
    from ..packet.headers import ArpOp

    return Predicate(
        lambda fields, env: fields.get("arp.op") == ArpOp.REPLY,
        "ARP reply",
        fields_used=("arp.op",),
    )


def arp_known_not_forwarded(name: str = "arp-known-not-forwarded") -> PropertySpec:
    return PropertySpec(
        name=name,
        description="Requests for known addresses are not forwarded",
        stages=(
            Observe(
                "resolved",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(_is_arp_reply(),),
                    binds=(Bind("D", "arp.sender_ip"),),
                ),
            ),
            Observe(
                "request_forwarded",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        _is_arp_request(),
                        FieldEq("arp.target_ip", Var("D")),
                        # The switch-forwarded copy of a host's request, not
                        # a proxy-originated packet (inject uses in_port 0).
                        Predicate(
                            lambda fields, env: fields.get("in_port", 0) != 0,
                            "forwarded (not switch-originated)",
                            fields_used=("in_port",),
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("D",),
        violation_message="request for a known address was forwarded",
    )


def arp_unknown_forwarded(
    knowledge: ArpKnowledge,
    T: float = 1.0,
    name: str = "arp-unknown-forwarded",
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description="Requests for unknown addresses are forwarded",
        stages=(
            Observe(
                "unknown_request",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(_is_arp_request(), knowledge.unknown_predicate()),
                    binds=(Bind("D", "arp.target_ip"),),
                ),
            ),
            Absent(
                "never_forwarded",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="unknown_request",
                ),
                within=T,
                semantic_deadline=False,
                unless=(
                    # The address becoming known lifts the forwarding
                    # obligation: the proxy may now answer directly instead.
                    EventPattern(
                        kind=EventKind.EGRESS,
                        guards=(
                            _is_arp_reply(),
                            FieldEq("arp.sender_ip", Var("D")),
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("D",),
        violation_message="request for an unknown address was never forwarded",
        # F4 •: the monitor holds a pending forwarding obligation per
        # request (the paper marks this row's Obligation column).
        obligation_override=True,
    )


def arp_reply_within(
    knowledge: ArpKnowledge,
    T: float = 1.0,
    refresh: str = "never",
    name: str = "arp-reply-within",
) -> PropertySpec:
    """Sec. 2.3: a request for a known address must be answered within T.

    ``refresh='on_prior'`` reproduces the unsound variant the paper warns
    about (re-requests reset the timer, so a storm every T-1 seconds is
    never flagged); tests exercise both policies.
    """
    return PropertySpec(
        name=name,
        description=(
            f"If the switch receives a request for a known address, it "
            f"sends a reply within {T} seconds"
        ),
        stages=(
            Observe(
                "known_request",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(_is_arp_request(), knowledge.known_predicate()),
                    binds=(
                        Bind("D", "arp.target_ip"),
                        Bind("asker", "arp.sender_mac"),
                    ),
                ),
            ),
            Absent(
                "no_reply",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        _is_arp_reply(),
                        FieldEq("arp.sender_ip", Var("D")),
                        FieldEq("arp.target_mac", Var("asker")),
                    ),
                ),
                within=T,
                refresh=refresh,
                semantic_deadline=False,
            ),
        ),
        key_vars=("D", "asker"),
        violation_message="no reply sent for a known-address request within T",
        obligation_override=True,
    )
