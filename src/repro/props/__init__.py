"""The property catalog: Table 1's thirteen properties plus the worked
examples of Sec. 1 and Sec. 2, each as a monitor-ready specification."""

from .arp import (
    ArpKnowledge,
    arp_known_not_forwarded,
    arp_reply_within,
    arp_unknown_forwarded,
)
from .catalog import (
    CATALOG_BACKENDS,
    CATALOG_VIP,
    CatalogEntry,
    TABLE1_HEADER,
    build_table1,
    render_table1,
    worked_examples,
)
from .dhcp import dhcp_no_overlap, dhcp_no_reuse, dhcp_reply_within
from .dhcp_arp import LeaseKnowledge, arp_cache_preloaded, no_unfounded_reply
from .firewall import (
    firewall_basic,
    firewall_drops_after_close,
    firewall_timed,
    firewall_with_close,
)
from .ftp import ftp_data_port_matches
from .learning import (
    learned_no_flood,
    learned_unicast_port,
    link_down_clears_learning,
)
from .load_balancing import (
    RoundRobinExpectation,
    lb_hashed_port,
    lb_round_robin_port,
    lb_sticky_port,
)
from .nat import nat_reverse_translation
from .port_knocking import knocking_invalidated, knocking_recognized

__all__ = [
    "ArpKnowledge",
    "arp_known_not_forwarded",
    "arp_reply_within",
    "arp_unknown_forwarded",
    "CATALOG_BACKENDS",
    "CATALOG_VIP",
    "CatalogEntry",
    "TABLE1_HEADER",
    "build_table1",
    "render_table1",
    "worked_examples",
    "dhcp_no_overlap",
    "dhcp_no_reuse",
    "dhcp_reply_within",
    "LeaseKnowledge",
    "arp_cache_preloaded",
    "no_unfounded_reply",
    "firewall_basic",
    "firewall_drops_after_close",
    "firewall_timed",
    "firewall_with_close",
    "ftp_data_port_matches",
    "learned_no_flood",
    "learned_unicast_port",
    "link_down_clears_learning",
    "RoundRobinExpectation",
    "lb_hashed_port",
    "lb_round_robin_port",
    "lb_sticky_port",
    "nat_reverse_translation",
    "knocking_invalidated",
    "knocking_recognized",
]
