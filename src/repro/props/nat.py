"""NAT reverse-translation property — the worked example of Sec. 2.2.

"Return packets are translated according to their corresponding initial
outgoing translation."  Four observations, using packet identity (Feature
5) to connect each arrival with its rewritten departure, and a disjunctive
negative match (Feature 6) for the final "destination not equal to A, P":

1. arrival A,P -> B,Q from the internal side;
2. the same packet departing with its translated source A',P';
3. an arrival B,Q -> A',P' from the external side;
4. the same packet departing with destination A'',P'' where A'' != A or
   P'' != P — the violation.
"""

from __future__ import annotations

from ..core.refs import (
    Bind,
    Const,
    EventKind,
    EventPattern,
    FieldEq,
    MismatchAny,
    Var,
)
from ..core.spec import Observe, PropertySpec


def nat_reverse_translation(
    internal_port: int = 1,
    external_port: int = 2,
    name: str = "nat-reverse-translation",
) -> PropertySpec:
    """The four-observation NAT property over TCP flows."""
    return PropertySpec(
        name=name,
        description=(
            "Return packets are translated according to their corresponding "
            "initial outgoing translation"
        ),
        stages=(
            Observe(
                "outbound_arrival",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(FieldEq("in_port", Const(internal_port)),),
                    binds=(
                        Bind("A", "ipv4.src"),
                        Bind("P", "tcp.src"),
                        Bind("B", "ipv4.dst"),
                        Bind("Q", "tcp.dst"),
                    ),
                ),
            ),
            Observe(
                "outbound_translated",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="outbound_arrival",
                    guards=(
                        FieldEq("ipv4.dst", Var("B")),
                        FieldEq("tcp.dst", Var("Q")),
                    ),
                    binds=(Bind("A2", "ipv4.src"), Bind("P2", "tcp.src")),
                ),
            ),
            Observe(
                "return_arrival",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(
                        FieldEq("in_port", Const(external_port)),
                        FieldEq("ipv4.src", Var("B")),
                        FieldEq("tcp.src", Var("Q")),
                        FieldEq("ipv4.dst", Var("A2")),
                        FieldEq("tcp.dst", Var("P2")),
                    ),
                ),
            ),
            Observe(
                "return_mistranslated",
                EventPattern(
                    kind=EventKind.EGRESS,
                    same_packet_as="return_arrival",
                    guards=(
                        MismatchAny(
                            (("ipv4.dst", Var("A")), ("tcp.dst", Var("P")))
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("A", "P", "B", "Q"),
        violation_message=(
            "return packet translated to the wrong internal endpoint "
            "(A'' != A or P'' != P)"
        ),
    )
