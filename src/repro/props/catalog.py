"""The Table 1 catalog: all thirteen properties with the paper's expected
feature annotations, plus the Sec. 1/2 worked examples.

``TABLE1`` is the reproduction target for ``benchmarks/bench_table1.py``:
each entry pairs a property specification with the row the paper prints.
The bench runs the static analyzer over the specification and asserts
cell-for-cell agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..core.analysis import analyze
from ..core.spec import PropertySpec
from ..packet.addresses import IPv4Address
from .arp import (
    ArpKnowledge,
    arp_known_not_forwarded,
    arp_reply_within,
    arp_unknown_forwarded,
)
from .dhcp import dhcp_no_overlap, dhcp_no_reuse, dhcp_reply_within
from .dhcp_arp import LeaseKnowledge, arp_cache_preloaded, no_unfounded_reply
from .firewall import (
    firewall_basic,
    firewall_drops_after_close,
    firewall_timed,
    firewall_with_close,
)
from .ftp import ftp_data_port_matches
from .learning import (
    learned_no_flood,
    learned_unicast_port,
    link_down_clears_learning,
)
from .load_balancing import (
    RoundRobinExpectation,
    lb_hashed_port,
    lb_round_robin_port,
    lb_sticky_port,
)
from .nat import nat_reverse_translation
from .port_knocking import knocking_invalidated, knocking_recognized

#: The VIP / backend set used by the catalog's load-balancing rows.
CATALOG_VIP = IPv4Address("10.0.0.100")
CATALOG_BACKENDS = (2, 3, 4)


@dataclass(frozen=True)
class CatalogEntry:
    """One Table 1 row: the property plus the paper's printed cells."""

    group: str
    description: str  # the paper's wording
    prop: PropertySpec
    #: (Fields, History, Timeouts, Obligation, Identity, NegMatch,
    #:  TimeoutActs, InstID) exactly as printed in Table 1.
    expected_row: Tuple[str, str, str, str, str, str, str, str]

    def computed_row(self) -> Tuple[str, str, str, str, str, str, str, str]:
        return analyze(self.prop).table1_row()

    def matches_paper(self) -> bool:
        return self.computed_row() == self.expected_row


def build_table1() -> Tuple[CatalogEntry, ...]:
    """Construct fresh property instances for all thirteen Table 1 rows.

    A fresh call builds fresh auxiliary-knowledge objects, so catalog
    properties can be monitored independently in different tests.
    """
    arp_knowledge = ArpKnowledge()
    lease_knowledge = LeaseKnowledge()
    rr = RoundRobinExpectation(CATALOG_VIP, CATALOG_BACKENDS)
    dot = "•"
    blank = ""
    return (
        CatalogEntry(
            "ARP Cache Proxy",
            "Requests for known addresses are not forwarded",
            arp_known_not_forwarded(),
            ("L3", dot, blank, blank, blank, blank, blank, "exact"),
        ),
        CatalogEntry(
            "ARP Cache Proxy",
            "Requests for unknown addresses are forwarded",
            arp_unknown_forwarded(arp_knowledge),
            ("L3", dot, blank, dot, dot, blank, dot, "exact"),
        ),
        CatalogEntry(
            "Port Knocking",
            "Intervening guesses invalidate sequence",
            knocking_invalidated(),
            ("L4", dot, blank, blank, blank, dot, blank, "exact"),
        ),
        CatalogEntry(
            "Port Knocking",
            "Recognize valid sequence",
            knocking_recognized(),
            ("L4", dot, blank, dot, blank, dot, blank, "exact"),
        ),
        CatalogEntry(
            "Load Balancing",
            "New flows go to hashed port",
            lb_hashed_port(CATALOG_VIP, CATALOG_BACKENDS),
            ("L4", dot, blank, dot, dot, blank, blank, "symmetric"),
        ),
        CatalogEntry(
            "Load Balancing",
            "New flows go to round-robin port",
            lb_round_robin_port(CATALOG_VIP, CATALOG_BACKENDS, rr),
            ("L4", dot, blank, dot, dot, blank, blank, "symmetric"),
        ),
        CatalogEntry(
            "Load Balancing",
            "No change in port until flow closed",
            lb_sticky_port(CATALOG_VIP),
            ("L4", dot, blank, blank, dot, dot, blank, "symmetric"),
        ),
        CatalogEntry(
            "FTP",
            "Data L4 port matches L4 port given in control stream",
            ftp_data_port_matches(),
            ("L7", dot, blank, blank, blank, dot, blank, "symmetric"),
        ),
        CatalogEntry(
            "DHCP",
            "Reply to lease request within T seconds",
            dhcp_reply_within(),
            ("L7", dot, dot, blank, blank, blank, dot, "symmetric"),
        ),
        CatalogEntry(
            "DHCP",
            "Leased addresses never re-used until expiration or release",
            dhcp_no_reuse(),
            ("L7", dot, dot, blank, blank, blank, blank, "symmetric"),
        ),
        CatalogEntry(
            "DHCP",
            "No lease overlap between DHCP servers",
            dhcp_no_overlap(),
            ("L7", dot, blank, blank, blank, dot, blank, "symmetric"),
        ),
        CatalogEntry(
            "DHCP + ARP Proxy",
            "Pre-load ARP cache with leased addresses",
            arp_cache_preloaded(),
            ("L7", dot, blank, blank, blank, dot, dot, "wandering"),
        ),
        CatalogEntry(
            "DHCP + ARP Proxy",
            "No direct reply if neither pre-loaded nor prior reply seen",
            no_unfounded_reply(lease_knowledge),
            ("L7", dot, blank, dot, blank, blank, blank, "wandering"),
        ),
    )


def worked_examples() -> Tuple[PropertySpec, ...]:
    """The Sec. 1 and Sec. 2 properties (not Table 1 rows)."""
    return (
        learned_unicast_port(),
        learned_no_flood(),
        link_down_clears_learning(),
        firewall_basic(),
        firewall_timed(),
        firewall_with_close(),
        firewall_drops_after_close(),
        nat_reverse_translation(),
    )


TABLE1_HEADER = (
    "Fields",
    "History",
    "Timeouts",
    "Obligation",
    "Identity",
    "Neg Match",
    "T.Out. Acts",
    "Inst. ID",
)


def render_table1(entries=None) -> str:
    """Pretty-print computed Table 1 alongside the paper's cells."""
    entries = build_table1() if entries is None else entries
    lines = []
    name_width = max(len(e.description) for e in entries) + 2
    header = "  ".join(h.ljust(10) for h in TABLE1_HEADER)
    lines.append(" " * name_width + header)
    for entry in entries:
        computed = entry.computed_row()
        ok = "OK " if entry.matches_paper() else "DIFF"
        row = "  ".join(str(c).ljust(10) for c in computed)
        lines.append(f"{entry.description.ljust(name_width)}{row}  [{ok}]")
    return "\n".join(lines)
