"""DHCP properties — Table 1's DHCP group.

* :func:`dhcp_reply_within` — "Reply to lease request within T seconds."
  The deadline is part of the property's statement, so it requires both
  ordinary timeouts (F3) and timeout actions (F7).  Instance matching is
  symmetric: the request arrives *from* the client (``eth.src``), the
  reply leaves *to* it (``eth.dst``).

* :func:`dhcp_no_reuse` — "Leased addresses never re-used until expiration
  or release."  A second ACK for the same address within the lease window
  is the violation — unless it is a renewal to the same client (the first
  ``unless``) or the holder released in between (the second).  F3 • from
  the lease-duration window.

* :func:`dhcp_no_overlap` — "No lease overlap between DHCP servers": two
  ACKs for the same address from *different* server identifiers (F6
  negative match).  The paper classifies the whole DHCP group symmetric;
  structurally this row matches the same fields in both stages (exact), so
  it carries a documented ``match_kind_override``.
"""

from __future__ import annotations

from ..core.refs import Bind, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Absent, Observe, PropertySpec
from .common import is_dhcp_ack, is_dhcp_release, is_dhcp_request


def dhcp_reply_within(T: float = 2.0, name: str = "dhcp-reply-within") -> PropertySpec:
    return PropertySpec(
        name=name,
        description=f"Reply to a DHCP lease request within {T} seconds",
        stages=(
            Observe(
                "request",
                EventPattern(
                    kind=EventKind.ARRIVAL,
                    guards=(is_dhcp_request(),),
                    binds=(
                        Bind("client", "eth.src"),
                        Bind("xid", "dhcp.xid"),
                    ),
                ),
            ),
            Absent(
                "no_reply",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        # ACK or NAK: any server answer to this transaction,
                        # addressed back to the requesting client.
                        FieldEq("dhcp.xid", Var("xid")),
                        FieldEq("eth.dst", Var("client")),
                    ),
                ),
                within=T,
                # "within T seconds" is the property statement itself.
                semantic_deadline=True,
            ),
        ),
        key_vars=("client", "xid"),
        violation_message="no DHCP reply within the required window",
        # Paper leaves Obligation blank for this row (the deadline, not an
        # open-ended obligation, bounds the wait).
        obligation_override=False,
    )


def dhcp_no_reuse(
    lease_time: float = 60.0, name: str = "dhcp-no-reuse"
) -> PropertySpec:
    return PropertySpec(
        name=name,
        description=(
            "Leased addresses are never re-used until expiration or release"
        ),
        stages=(
            Observe(
                "leased",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(is_dhcp_ack(),),
                    binds=(
                        Bind("ip", "dhcp.yiaddr"),
                        # The ACK is addressed to the lease holder.
                        Bind("holder", "eth.dst"),
                    ),
                ),
                # Matching a fresh ACK for the same address refreshes the
                # window (renewal) rather than duplicating the instance.
            ),
            Observe(
                "re_leased",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        is_dhcp_ack(),
                        FieldEq("dhcp.yiaddr", Var("ip")),
                    ),
                ),
                within=lease_time,
                unless=(
                    # Renewal: another ACK for the address to the holder.
                    EventPattern(
                        kind=EventKind.EGRESS,
                        guards=(
                            is_dhcp_ack(),
                            FieldEq("dhcp.yiaddr", Var("ip")),
                            FieldEq("eth.dst", Var("holder")),
                        ),
                    ),
                    # Release: the holder gives the address back.
                    EventPattern(
                        kind=EventKind.ARRIVAL,
                        guards=(
                            is_dhcp_release(),
                            FieldEq("eth.src", Var("holder")),
                        ),
                    ),
                ),
            ),
        ),
        key_vars=("ip",),
        violation_message=(
            "address re-leased to another client before expiry or release"
        ),
        # Paper marks only History and Timeouts for this row; the unless
        # patterns here are renewal/release plumbing, not a pending
        # response obligation.
        obligation_override=False,
    )


def dhcp_no_overlap(name: str = "dhcp-no-overlap") -> PropertySpec:
    return PropertySpec(
        name=name,
        description="No lease overlap between DHCP servers",
        stages=(
            Observe(
                "leased_by",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(is_dhcp_ack(),),
                    binds=(
                        Bind("ip", "dhcp.yiaddr"),
                        Bind("server", "dhcp.server_id"),
                    ),
                ),
            ),
            Observe(
                "leased_by_other",
                EventPattern(
                    kind=EventKind.EGRESS,
                    guards=(
                        is_dhcp_ack(),
                        FieldEq("dhcp.yiaddr", Var("ip")),
                        FieldNe("dhcp.server_id", Var("server")),
                    ),
                ),
            ),
        ),
        key_vars=("ip",),
        violation_message="the same address was leased by two different servers",
        # Structurally exact (same fields matched in both stages); the
        # paper classifies the whole DHCP group as symmetric — we pin the
        # paper's value and record the deviation in EXPERIMENTS.md.
        match_kind_override="symmetric",
    )
