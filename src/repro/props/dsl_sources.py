"""The property catalog in the textual property language.

DESIGN.md promises each catalog property "as both DSL text and IR": this
module is the DSL half.  :data:`DSL_SOURCES` holds the text;
:func:`dsl_table1` compiles all thirteen Table 1 rows (building the same
auxiliary knowledge objects the programmatic catalog uses) and
:func:`dsl_worked_examples` the Sec. 1/2 properties.
``tests/integration/test_dsl_catalog.py`` asserts each DSL version
analyzes identically to its programmatic twin — the two halves cannot
drift apart silently.

Named predicates (supplied by the loaders): ``@internal``, ``@tcp_syn``,
``@tcp_close``, ``@not_close``, ``@dhcp_request``, ``@dhcp_ack``,
``@dhcp_release``, ``@arp_request``, ``@arp_reply``, ``@known``,
``@unknown``, ``@lease_unknown``, ``@forwarded``, ``@ftp_advertises``,
``@wrong_hash_backend``, ``@wrong_rr_backend``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..core.refs import Predicate
from ..core.spec import PropertySpec
from ..lang import compile_one
from .arp import ArpKnowledge, _is_arp_reply, _is_arp_request
from .catalog import CATALOG_BACKENDS, CATALOG_VIP
from .common import (
    internal_to_external,
    is_dhcp_ack,
    is_dhcp_release,
    is_dhcp_request,
    is_not_tcp_close,
    is_tcp_close,
    is_tcp_syn,
)
from .dhcp_arp import LeaseKnowledge
from .ftp import _advertises_endpoint
from .load_balancing import RoundRobinExpectation

DSL_SOURCES: Dict[str, str] = {}

DSL_SOURCES["arp-known-not-forwarded"] = """
property arp_known_not_forwarded "Requests for known addresses are not forwarded"
key D
observe resolved : egress
    where @arp_reply
    bind D = arp.sender_ip
observe request_forwarded : egress
    where @arp_request and arp.target_ip == $D and @forwarded
"""

DSL_SOURCES["arp-unknown-forwarded"] = """
property arp_unknown_forwarded "Requests for unknown addresses are forwarded"
key D
annotate obligation true
observe unknown_request : arrival
    where @arp_request and @unknown
    bind D = arp.target_ip
absent never_forwarded : egress within 1 samepacket unknown_request
    unless egress where @arp_reply and arp.sender_ip == $D
"""

DSL_SOURCES["knocking-invalidated"] = """
property knocking_invalidated "Intervening guesses invalidate sequence"
key knocker
annotate obligation false
observe first_knock : arrival
    where tcp.dst == 7001
    bind knocker = ipv4.src
observe wrong_guess : arrival
    where ipv4.src == $knocker and tcp.dst != 7002 and tcp.dst != 22
observe second_knock : arrival
    where ipv4.src == $knocker and tcp.dst == 7002
observe access_granted : egress action unicast
    where ipv4.src == $knocker and tcp.dst == 22
"""

DSL_SOURCES["knocking-recognized"] = """
property knocking_recognized "Recognize valid sequence"
key knocker
annotate obligation true
observe first_knock : arrival
    where tcp.dst == 7001
    bind knocker = ipv4.src
observe second_knock : arrival
    where ipv4.src == $knocker and tcp.dst == 7002
    unless arrival where ipv4.src == $knocker and tcp.dst != 7002 and tcp.dst != 22
observe access_denied : drop
    where ipv4.src == $knocker and tcp.dst == 22
    unless arrival where ipv4.src == $knocker and tcp.dst != 7002 and tcp.dst != 22
"""

DSL_SOURCES["lb-hashed-port"] = """
property lb_hashed_port "New flows go to hashed port"
key cip, cport, vip, vport
annotate obligation true
observe new_flow : arrival
    where ipv4.dst == 10.0.0.100 and @tcp_syn
    bind cip = ipv4.src, cport = tcp.src, vip = ipv4.dst, vport = tcp.dst
observe wrong_backend : egress samepacket new_flow
    where @wrong_hash_backend
    unless arrival where ipv4.src == $cip and tcp.src == $cport and ipv4.dst == $vip and tcp.dst == $vport and @tcp_close
    unless arrival where ipv4.dst == $cip and tcp.dst == $cport and @tcp_close
"""

DSL_SOURCES["lb-round-robin-port"] = """
property lb_round_robin_port "New flows go to round-robin port"
key cip, cport, vip, vport
annotate obligation true
observe new_flow : arrival
    where ipv4.dst == 10.0.0.100 and @tcp_syn
    bind cip = ipv4.src, cport = tcp.src, vip = ipv4.dst, vport = tcp.dst
observe wrong_backend : egress samepacket new_flow
    where @wrong_rr_backend
    unless arrival where ipv4.src == $cip and tcp.src == $cport and ipv4.dst == $vip and tcp.dst == $vport and @tcp_close
    unless arrival where ipv4.dst == $cip and tcp.dst == $cport and @tcp_close
"""

DSL_SOURCES["lb-sticky-port"] = """
property lb_sticky_port "No change in port until flow closed"
key cip, cport, vip, vport
annotate obligation false
observe pinned : egress
    where ipv4.dst == 10.0.0.100 and @not_close
    bind cip = ipv4.src, cport = tcp.src, vip = ipv4.dst, vport = tcp.dst, backend = out_port
observe next_packet : arrival
    where ipv4.src == $cip and tcp.src == $cport and ipv4.dst == $vip and tcp.dst == $vport
    unless arrival where ipv4.src == $cip and tcp.src == $cport and ipv4.dst == $vip and tcp.dst == $vport and @tcp_close
    unless arrival where ipv4.dst == $cip and tcp.dst == $cport and @tcp_close
observe moved : egress samepacket next_packet
    where out_port != $backend
    unless arrival where ipv4.src == $cip and tcp.src == $cport and ipv4.dst == $vip and tcp.dst == $vport and @tcp_close
    unless arrival where ipv4.dst == $cip and tcp.dst == $cport and @tcp_close
    unless egress samepacket next_packet where out_port == $backend
"""

DSL_SOURCES["ftp-data-port-matches"] = """
property ftp_data_port_matches "Data L4 port matches L4 port given in control stream"
key client, server
observe advertised : arrival
    where @ftp_advertises
    bind client = ipv4.src, server = ipv4.dst, dport = ftp.data_port
observe wrong_data_port : arrival
    where ipv4.src == $server and ipv4.dst == $client and @tcp_syn and tcp.dst != $dport
"""

DSL_SOURCES["dhcp-reply-within"] = """
property dhcp_reply_within "Reply to lease request within T seconds"
key client, xid
annotate obligation false
observe request : arrival
    where @dhcp_request
    bind client = eth.src, xid = dhcp.xid
absent no_reply : egress within 2 semantic
    where dhcp.xid == $xid and eth.dst == $client
"""

DSL_SOURCES["dhcp-no-reuse"] = """
property dhcp_no_reuse "Leased addresses never re-used until expiration or release"
key ip
annotate obligation false
observe leased : egress
    where @dhcp_ack
    bind ip = dhcp.yiaddr, holder = eth.dst
observe re_leased : egress within 60
    where @dhcp_ack and dhcp.yiaddr == $ip
    unless egress where @dhcp_ack and dhcp.yiaddr == $ip and eth.dst == $holder
    unless arrival where @dhcp_release and eth.src == $holder
"""

DSL_SOURCES["dhcp-no-overlap"] = """
property dhcp_no_overlap "No lease overlap between DHCP servers"
key ip
annotate instance symmetric
observe leased_by : egress
    where @dhcp_ack
    bind ip = dhcp.yiaddr, server = dhcp.server_id
observe leased_by_other : egress
    where @dhcp_ack and dhcp.yiaddr == $ip and dhcp.server_id != $server
"""

DSL_SOURCES["arp-cache-preloaded"] = """
property arp_cache_preloaded "Pre-load ARP cache with leased addresses"
key ip, holder_mac
annotate obligation false
observe leased : egress
    where @dhcp_ack
    bind ip = dhcp.yiaddr, holder_mac = dhcp.client_mac
observe asked : arrival
    where @arp_request and arp.target_ip == $ip and arp.sender_mac != $holder_mac
    bind asker = arp.sender_mac
absent no_correct_reply : egress within 1
    where @arp_reply and arp.sender_ip == $ip and arp.sender_mac == $holder_mac and arp.target_mac == $asker
"""

DSL_SOURCES["no-unfounded-reply"] = """
property no_unfounded_reply "No direct reply if neither pre-loaded nor prior reply seen"
key ip, asker
annotate obligation true
observe unknown_asked : arrival
    where @arp_request and @lease_unknown
    bind ip = arp.target_ip, asker = arp.sender_mac
observe unfounded_reply : egress
    where @arp_reply and arp.sender_ip == $ip and arp.target_mac == $asker and in_port == 0
    unless egress where @dhcp_ack and dhcp.yiaddr == $ip
    unless arrival where @arp_reply and arp.sender_ip == $ip
"""

# -- worked examples (Sec. 1 / Sec. 2) ------------------------------------
DSL_SOURCES["learned-unicast-port"] = """
property learned_unicast_port "Packets to a learned destination use its port"
key D
observe learn : arrival
    bind D = eth.src, p = in_port
observe bad_egress : egress
    where eth.dst == $D and out_port != $p
"""

DSL_SOURCES["learned-no-flood"] = """
property learned_no_flood "Packets to a learned destination are not flooded"
key D
observe learn : arrival
    # $p carries the learned port into violation reports (provenance);
    # no guard reads it.  # lint: disable=L002
    bind D = eth.src, p = in_port
observe flooded : egress action flood
    where eth.dst == $D
"""

DSL_SOURCES["link-down-clears-learning"] = """
property link_down_clears_learning "Link-down deletes the learned set"
key D
observe learn : arrival
    bind D = eth.src
observe link_down : oob(port_down)
observe stale_unicast : egress action unicast
    where eth.dst == $D
    unless arrival where eth.src == $D
"""

DSL_SOURCES["firewall-basic"] = """
property firewall_basic "Return traffic is not dropped"
key A, B
observe outbound : arrival
    where @internal
    bind A = ipv4.src, B = ipv4.dst
observe return_dropped : drop
    where ipv4.src == $B and ipv4.dst == $A
"""

DSL_SOURCES["firewall-timed"] = """
property firewall_timed "Return traffic is not dropped within the window"
key A, B
observe outbound : arrival
    where @internal
    bind A = ipv4.src, B = ipv4.dst
observe return_dropped : drop within 30
    where ipv4.src == $B and ipv4.dst == $A
"""

DSL_SOURCES["firewall-with-close"] = """
property firewall_with_close "Return traffic passes until timeout or close"
key A, B
observe outbound : arrival
    where @internal
    bind A = ipv4.src, B = ipv4.dst
observe return_dropped : drop within 30
    where ipv4.src == $B and ipv4.dst == $A
    unless arrival where ipv4.src == $A and ipv4.dst == $B and @tcp_close
    unless arrival where ipv4.src == $B and ipv4.dst == $A and @tcp_close
"""

DSL_SOURCES["nat-reverse-translation"] = """
property nat_reverse_translation "Return packets use the original translation"
key A, P, B, Q
observe outbound_arrival : arrival
    where in_port == 1
    bind A = ipv4.src, P = tcp.src, B = ipv4.dst, Q = tcp.dst
observe outbound_translated : egress samepacket outbound_arrival
    where ipv4.dst == $B and tcp.dst == $Q
    bind A2 = ipv4.src, P2 = tcp.src
observe return_arrival : arrival
    where in_port == 2 and ipv4.src == $B and tcp.src == $Q and ipv4.dst == $A2 and tcp.dst == $P2
observe return_mistranslated : egress samepacket return_arrival
    where any_differs(ipv4.dst == $A, tcp.dst == $P)
"""


def _lb_predicates(rr: RoundRobinExpectation) -> Dict[str, Predicate]:
    from .load_balancing import flow_hash

    backends = CATALOG_BACKENDS

    def wrong_hash(fields, env):
        key = (env["cip"], env["cport"], env["vip"], env["vport"], 6)
        return fields.get("out_port") != backends[flow_hash(key, len(backends))]

    def wrong_rr(fields, env):
        expected = rr.expected(env)
        return expected is not None and fields.get("out_port") != expected

    return {
        "wrong_hash_backend": Predicate(
            wrong_hash, "egress port differs from hashed backend",
            fields_used=("out_port",)),
        "wrong_rr_backend": Predicate(
            wrong_rr, "egress port differs from round-robin backend",
            fields_used=("out_port",)),
    }


def dsl_predicates(
    arp_knowledge: ArpKnowledge,
    lease_knowledge: LeaseKnowledge,
    rr: RoundRobinExpectation,
) -> Dict[str, Predicate]:
    """The full predicate environment for the DSL catalog."""
    env: Dict[str, Predicate] = {
        "internal": internal_to_external(),
        "tcp_syn": is_tcp_syn(),
        "tcp_close": is_tcp_close(),
        "not_close": is_not_tcp_close(),
        "dhcp_request": is_dhcp_request(),
        "dhcp_ack": is_dhcp_ack(),
        "dhcp_release": is_dhcp_release(),
        "arp_request": _is_arp_request(),
        "arp_reply": _is_arp_reply(),
        "known": arp_knowledge.known_predicate(),
        "unknown": arp_knowledge.unknown_predicate(),
        "lease_unknown": lease_knowledge.unknown_predicate(),
        "ftp_advertises": _advertises_endpoint(),
        "forwarded": Predicate(
            lambda fields, env: fields.get("in_port", 0) != 0,
            "forwarded (not switch-originated)",
            fields_used=("in_port",)),
    }
    env.update(_lb_predicates(rr))
    return env


#: catalog name -> the DSL source key above (Table 1 order)
TABLE1_DSL_KEYS: Tuple[str, ...] = (
    "arp-known-not-forwarded",
    "arp-unknown-forwarded",
    "knocking-invalidated",
    "knocking-recognized",
    "lb-hashed-port",
    "lb-round-robin-port",
    "lb-sticky-port",
    "ftp-data-port-matches",
    "dhcp-reply-within",
    "dhcp-no-reuse",
    "dhcp-no-overlap",
    "arp-cache-preloaded",
    "no-unfounded-reply",
)

WORKED_EXAMPLE_DSL_KEYS: Tuple[str, ...] = (
    "learned-unicast-port",
    "learned-no-flood",
    "link-down-clears-learning",
    "firewall-basic",
    "firewall-timed",
    "firewall-with-close",
    "nat-reverse-translation",
)


def dsl_table1() -> List[Tuple[str, PropertySpec]]:
    """Compile the thirteen Table 1 properties from their DSL sources."""
    env = dsl_predicates(ArpKnowledge(), LeaseKnowledge(),
                         RoundRobinExpectation(CATALOG_VIP, CATALOG_BACKENDS))
    return [(key, compile_one(DSL_SOURCES[key], env))
            for key in TABLE1_DSL_KEYS]


def dsl_worked_examples() -> List[Tuple[str, PropertySpec]]:
    """Compile the Sec. 1/2 worked examples from their DSL sources."""
    env = dsl_predicates(ArpKnowledge(), LeaseKnowledge(),
                         RoundRobinExpectation(CATALOG_VIP, CATALOG_BACKENDS))
    return [(key, compile_one(DSL_SOURCES[key], env))
            for key in WORKED_EXAMPLE_DSL_KEYS]
