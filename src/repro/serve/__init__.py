"""The live controller daemon — ``repro serve`` and friends.

Everything else in the reproduction replays recorded traces on the
virtual clock; this package is the long-running counterpart.  A
:class:`ServeDaemon` ingests serialized event frames (the
``netsim/serialize.py`` JSONL format, or the RPF1 framed binary codec —
each ingest connection is sniffed for the four-byte magic) from TCP
sockets and pipes into a bounded :class:`IngestQueue` with explicit
backpressure —
accept/shed decisions land in the monitor's
:class:`~repro.core.degradation.OverflowLedger`, so overload degrades
into a detection-uncertainty interval instead of silent loss — and
dispatches them through the compiled ``observe_batch`` hot path.  An
HTTP observability plane (stdlib only) exposes ``/metrics`` (Prometheus
text), ``/stats`` (JSON), ``/healthz`` + ``/readyz`` (liveness vs.
queue-pressure readiness), and ``/trace`` (recent spans from the
tracer's ring buffer).  SIGTERM drains the queue and emits a final
:class:`ServeDegradationReport`.

``stream_trace`` is the client half (``repro send``): pace a recorded
trace at a target event rate into a running daemon, for demos,
benchmarks, and the CI smoke job.
"""

from .daemon import DaemonHandle, ServeConfig, ServeDaemon, serve_in_thread
from .ingest import FrameError, IngestQueue, parse_frame
from .report import ServeDegradationReport, render_serve_report
from .send import SendResult, stream_trace

__all__ = [
    "DaemonHandle",
    "FrameError",
    "IngestQueue",
    "SendResult",
    "ServeConfig",
    "ServeDaemon",
    "ServeDegradationReport",
    "parse_frame",
    "render_serve_report",
    "serve_in_thread",
    "stream_trace",
]
