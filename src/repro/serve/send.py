"""``repro send`` — stream a recorded trace into a live daemon.

The sender is intentionally primitive: it reads a JSONL trace file as
raw lines (no parse, no re-serialize — the wire format *is* the file
format) and writes them down a TCP socket at a target event rate.
Pacing uses absolute deadlines against the monotonic clock, so drift
does not accumulate: the Nth event is due at ``start + N/rate``
regardless of how late event N-1 went out.

``rate=0`` means "as fast as the socket accepts", which is how the
benchmark and the CI smoke job flood the daemon's ingest queue to
exercise shedding and the ``/readyz`` flip.

Connection loss is survivable: ``retry`` grants that many reconnect
attempts (with exponential ``backoff`` doubling per consecutive
failure, reset on success), and the chunk that was in flight when the
connection died is resent whole on the new connection.  The daemon's
frame parser tolerates the resulting duplicate/partial lines — a torn
line fails to parse and is counted as a frame error, never crashing
ingest.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..netsim.serialize import encode_frames, read_trace


@dataclass
class SendResult:
    """What a finished stream looked like from the sending side."""

    events: int
    duration: float
    target_rate: float
    reconnects: int = 0

    @property
    def achieved_rate(self) -> float:
        if self.duration <= 0:
            return float("inf") if self.events else 0.0
        return self.events / self.duration

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "duration": self.duration,
            "target_rate": self.target_rate,
            "achieved_rate": self.achieved_rate,
            "reconnects": self.reconnects,
        }


def _read_lines(path: str) -> List[bytes]:
    """Event lines from a trace file, newline-terminated, header kept.

    The header line is forwarded as-is — the daemon's frame parser skips
    it — so a sent stream is byte-identical to the file.
    """
    with open(path, "rb") as fp:
        return [line if line.endswith(b"\n") else line + b"\n"
                for line in fp if line.strip()]


def _build_units(path: str, format: str, chunk: int,
                 max_layer: int = 7) -> List[Tuple[bytes, int]]:
    """The trace as ``(payload, event_count)`` send units.

    ``jsonl`` keeps the file's own lines (one unit per line, headers
    counting zero events).  ``rpf1`` parses the trace and re-encodes it
    as framed binary batches of up to ``chunk`` events — the daemon's
    ingest sniffs the magic and switches codec per connection.
    """
    if format == "jsonl":
        return [(line, 0 if b'"TraceHeader"' in line else 1)
                for line in _read_lines(path)]
    if format == "rpf1":
        events = read_trace(path, max_layer=max_layer)
        return [(encode_frames(events[i:i + chunk]),
                 len(events[i:i + chunk]))
                for i in range(0, len(events), chunk)]
    raise ValueError(f"unknown send format {format!r}; "
                     "choose jsonl or rpf1")


def stream_trace(
    path: str,
    host: str,
    port: int,
    rate: float = 0.0,
    repeat: int = 1,
    chunk: int = 64,
    retry: int = 0,
    backoff: float = 0.5,
    format: str = "jsonl",
    monotonic: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
    connect: Optional[Callable[[str, int], socket.socket]] = None,
) -> SendResult:
    """Stream the trace at ``path`` to ``host:port`` at ``rate`` events/s.

    ``repeat`` replays the whole file that many times over one
    connection.  ``rate=0`` disables pacing.  ``chunk`` bounds how many
    events are written between pacing checks (coarse pacing costs far
    fewer syscalls than per-event sleeps; at 10k ev/s a chunk of 64 is
    a pacing decision every ~6ms).  ``retry`` is the reconnect budget
    for the whole stream: each connection failure — initial or mid-send
    — consumes one attempt and waits ``backoff * 2**consecutive_failures``
    seconds; a successful reconnect resets the consecutive count, the
    budget never refills.  ``format`` picks the wire codec: ``jsonl``
    forwards the file's own lines; ``rpf1`` re-encodes the trace as
    framed binary batches (one batch per chunk).  ``monotonic``/
    ``sleep``/``connect`` are injectable for tests.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat!r}")
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate!r}")
    if retry < 0:
        raise ValueError(f"retry must be >= 0, got {retry!r}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff!r}")
    now = monotonic if monotonic is not None else time.monotonic
    pause = sleep if sleep is not None else time.sleep
    dial = (connect if connect is not None
            else lambda h, p: socket.create_connection((h, p)))
    units = _build_units(path, format, chunk)
    # An rpf1 unit is already a whole chunk-sized batch; jsonl units are
    # single lines grouped chunk-at-a-time at send time.
    group = chunk if format == "jsonl" else 1

    sent = 0  # events only; header lines don't count toward pacing
    reconnects = 0
    attempts_left = retry
    consecutive_failures = 0
    sock: Optional[socket.socket] = None
    start = now()
    try:
        for round_idx in range(repeat):
            i = 0
            while i < len(units):
                if sock is None:
                    try:
                        sock = dial(host, port)
                    except OSError:
                        if attempts_left <= 0:
                            raise
                        attempts_left -= 1
                        pause(backoff * (2 ** consecutive_failures))
                        consecutive_failures += 1
                        continue
                    if round_idx or i or consecutive_failures:
                        reconnects += 1
                    consecutive_failures = 0
                batch = units[i:i + group]
                try:
                    sock.sendall(b"".join(payload for payload, _ in batch))
                except OSError:
                    # The failed chunk is resent whole on the next
                    # connection; it was not counted as sent.
                    sock.close()
                    sock = None
                    continue
                i += len(batch)
                sent += sum(count for _, count in batch)
                if rate > 0:
                    due = start + sent / rate
                    delay = due - now()
                    if delay > 0:
                        pause(delay)
    finally:
        if sock is not None:
            sock.close()
    duration = max(0.0, now() - start)
    return SendResult(events=sent, duration=duration, target_rate=rate,
                      reconnects=reconnects)
