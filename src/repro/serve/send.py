"""``repro send`` — stream a recorded trace into a live daemon.

The sender is intentionally primitive: it reads a JSONL trace file as
raw lines (no parse, no re-serialize — the wire format *is* the file
format) and writes them down a TCP socket at a target event rate.
Pacing uses absolute deadlines against the monotonic clock, so drift
does not accumulate: the Nth event is due at ``start + N/rate``
regardless of how late event N-1 went out.

``rate=0`` means "as fast as the socket accepts", which is how the
benchmark and the CI smoke job flood the daemon's ingest queue to
exercise shedding and the ``/readyz`` flip.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class SendResult:
    """What a finished stream looked like from the sending side."""

    events: int
    duration: float
    target_rate: float

    @property
    def achieved_rate(self) -> float:
        if self.duration <= 0:
            return float("inf") if self.events else 0.0
        return self.events / self.duration

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "duration": self.duration,
            "target_rate": self.target_rate,
            "achieved_rate": self.achieved_rate,
        }


def _read_lines(path: str) -> List[bytes]:
    """Event lines from a trace file, newline-terminated, header kept.

    The header line is forwarded as-is — the daemon's frame parser skips
    it — so a sent stream is byte-identical to the file.
    """
    with open(path, "rb") as fp:
        return [line if line.endswith(b"\n") else line + b"\n"
                for line in fp if line.strip()]


def stream_trace(
    path: str,
    host: str,
    port: int,
    rate: float = 0.0,
    repeat: int = 1,
    chunk: int = 64,
    monotonic: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> SendResult:
    """Stream the trace at ``path`` to ``host:port`` at ``rate`` events/s.

    ``repeat`` replays the whole file that many times over one
    connection.  ``rate=0`` disables pacing.  ``chunk`` bounds how many
    events are written between pacing checks (coarse pacing costs far
    fewer syscalls than per-event sleeps; at 10k ev/s a chunk of 64 is
    a pacing decision every ~6ms).  ``monotonic``/``sleep`` are
    injectable for tests.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat!r}")
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate!r}")
    now = monotonic if monotonic is not None else time.monotonic
    pause = sleep if sleep is not None else time.sleep
    lines = _read_lines(path)

    sent = 0  # events only; header lines don't count toward pacing
    start = now()
    with socket.create_connection((host, port)) as sock:
        for _ in range(repeat):
            i = 0
            while i < len(lines):
                batch = lines[i:i + chunk]
                sock.sendall(b"".join(batch))
                i += len(batch)
                sent += sum(1 for line in batch
                            if b'"TraceHeader"' not in line)
                if rate > 0:
                    due = start + sent / rate
                    delay = due - now()
                    if delay > 0:
                        pause(delay)
    duration = max(0.0, now() - start)
    return SendResult(events=sent, duration=duration, target_rate=rate)
