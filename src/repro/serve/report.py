"""The daemon's exit receipt: what was seen, what was shed, what it means.

A live monitor that sheds under load is only honest if it says so on the
way out.  :class:`ServeDegradationReport` is the serve-mode analogue of
``resilience.DegradationReport``: it folds the monitor's own shutdown
summary (``Monitor.stop()``) together with the ingest queue's
accept/shed accounting and reports the **detection-uncertainty
interval** — the range the true violation count could occupy given
everything that was dropped.  The CI smoke job parses this JSON; humans
get :func:`render_serve_report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ServeDegradationReport:
    """Final accounting emitted when a daemon drains and stops."""

    profile: str
    uptime: float
    events_ingested: int
    events_shed: int
    events_observed: int
    violations: int
    interval: Tuple[int, int]
    live_instances: int
    pending_ops: int
    frame_errors: int = 0
    queue: Dict[str, object] = field(default_factory=dict)
    ledger: Dict[str, object] = field(default_factory=dict)
    http_requests: int = 0
    #: Per-shard liveness rows captured just before the fabric quiesced
    #: ([] when serving a plain single monitor).
    shards: List[Dict[str, object]] = field(default_factory=list)
    shard_restarts: int = 0
    quarantined_batches: int = 0
    failed_shards: List[int] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        """True when nothing was shed: the observed count is the truth."""
        lo, hi = self.interval
        return lo == self.violations == hi

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "uptime": self.uptime,
            "events": {
                "ingested": self.events_ingested,
                "shed": self.events_shed,
                "observed": self.events_observed,
                "frame_errors": self.frame_errors,
            },
            "violations": {
                "observed": self.violations,
                "interval": list(self.interval),
                "exact": self.exact,
            },
            "monitor": {
                "live_instances": self.live_instances,
                "pending_ops": self.pending_ops,
            },
            "queue": dict(self.queue),
            "ledger": dict(self.ledger),
            "http_requests": self.http_requests,
            "fabric": {
                "shards": [dict(row) for row in self.shards],
                "restarts": self.shard_restarts,
                "quarantined_batches": self.quarantined_batches,
                "failed_shards": list(self.failed_shards),
            },
        }


def render_serve_report(report: ServeDegradationReport) -> str:
    """A terminal-friendly rendering of the final report."""
    lo, hi = report.interval
    lines: List[str] = []
    lines.append(f"serve report — profile={report.profile} "
                 f"uptime={report.uptime:.3f}s")
    lines.append(f"  events    ingested={report.events_ingested} "
                 f"shed={report.events_shed} "
                 f"observed={report.events_observed} "
                 f"frame_errors={report.frame_errors}")
    verdict = "exact" if report.exact else "uncertain"
    lines.append(f"  violations observed={report.violations} "
                 f"interval=[{lo}, {hi}] ({verdict})")
    lines.append(f"  monitor   live_instances={report.live_instances} "
                 f"pending_ops={report.pending_ops}")
    by_kind = report.ledger.get("by_kind") or {}
    if by_kind:
        sheds = " ".join(f"{kind}={count}"
                         for kind, count in sorted(by_kind.items()))
        lines.append(f"  ledger    {sheds}")
    else:
        lines.append("  ledger    (empty — nothing shed)")
    if report.shards:
        failed = (",".join(str(i) for i in report.failed_shards)
                  if report.failed_shards else "none")
        lines.append(f"  fabric    shards={len(report.shards)} "
                     f"restarts={report.shard_restarts} "
                     f"quarantined={report.quarantined_batches} "
                     f"failed={failed}")
    lines.append(f"  http      requests={report.http_requests}")
    return "\n".join(lines)
