"""Bounded ingest with explicit backpressure.

The queue between the network and the monitor is where overload becomes
*visible* instead of silent.  :class:`IngestQueue` is deliberately dumb:
a bounded deque whose :meth:`offer` either accepts a frame or sheds it
— and every shed is recorded in the monitor's
:class:`~repro.core.degradation.OverflowLedger` with both impact kinds,
because a missing event can suppress a real violation (a dropped kill
packet) or fabricate one (a dropped refresh lets a timeout fire).  The
daemon's ``/readyz`` endpoint and the final degradation report both read
this queue's accounting; nothing is lost without a ledger entry.

Readiness has hysteresis: the queue goes not-ready when depth crosses
``high_mark`` (or on any shed) and only returns once depth has fallen
back under ``low_mark`` *and* no shed has happened for
``shed_window`` seconds.  That keeps a scraping load balancer from
flapping a daemon that is oscillating at the edge of its capacity.

Frame parsing (:func:`parse_frame`) wraps ``event_from_dict`` from the
trace serializer so the wire format of the live daemon is byte-identical
to the recorded-trace format: anything ``repro record`` wrote can be
piped straight into a socket.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..core.degradation import IMPACT_FALSE, IMPACT_MISSED, OverflowLedger
from ..netsim.serialize import TraceFormatError, event_from_dict
from ..switch.events import DataplaneEvent
from ..telemetry import LATENCY_BUCKETS, MetricsRegistry, NullRegistry

#: Ledger kind for frames shed at the ingest boundary (before the
#: monitor ever saw them) — distinct from the monitor's own op-shed
#: kinds so reports can separate "network overload" from "state
#: overload".
SHED_KIND = "ingest-shed"


class FrameError(TraceFormatError):
    """Raised on a line that is neither a frame nor a trace header."""


def parse_frame(line: bytes, max_layer: int = 7) -> Optional[DataplaneEvent]:
    """Decode one newline-JSON frame into a dataplane event.

    Returns ``None`` for blank lines and ``TraceHeader`` lines (senders
    may stream a recorded trace file verbatim, header included); raises
    :class:`FrameError` for anything else that does not parse.
    """
    text = line.strip()
    if not text:
        return None
    try:
        data = json.loads(text.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"invalid frame: {exc}") from exc
    if not isinstance(data, dict):
        raise FrameError(f"frame must be a JSON object, got {type(data).__name__}")
    if data.get("kind") == "TraceHeader":
        return None
    try:
        return event_from_dict(data, max_layer=max_layer)
    except (TraceFormatError, KeyError, ValueError) as exc:
        raise FrameError(f"invalid frame: {exc}") from exc


class IngestQueue:
    """A bounded accept-or-shed queue feeding ``observe_batch``.

    ``clock`` supplies enqueue timestamps (daemon seconds); dwell time
    between :meth:`offer` and :meth:`take_batch` is observed into the
    ``repro_serve_ingest_latency_seconds`` histogram, and queue depth at
    enqueue into ``repro_serve_queue_depth_at_enqueue``.
    """

    def __init__(
        self,
        max_depth: int,
        ledger: Optional[OverflowLedger] = None,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        high_mark: float = 0.9,
        low_mark: float = 0.5,
        shed_window: float = 1.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth!r}")
        if not 0.0 < low_mark <= high_mark <= 1.0:
            raise ValueError(
                f"need 0 < low_mark <= high_mark <= 1, "
                f"got {low_mark!r}/{high_mark!r}"
            )
        self.max_depth = max_depth
        self.ledger = ledger if ledger is not None else OverflowLedger()
        self.clock = clock if clock is not None else (lambda: 0.0)
        registry = registry if registry is not None else NullRegistry()
        self.high_mark = high_mark
        self.low_mark = low_mark
        self.shed_window = shed_window

        self._frames: Deque[Tuple[DataplaneEvent, float]] = deque()
        self.accepted = 0
        self.shed = 0
        self.last_shed_at: Optional[float] = None
        self._saturated = False  # hysteresis latch

        self._ingested_total = registry.counter(
            "repro_serve_events_ingested_total",
            help="Frames accepted into the ingest queue.")
        self._shed_total = registry.counter(
            "repro_serve_events_shed_total",
            help="Frames shed at the ingest boundary (queue full).")
        self._depth_gauge = registry.gauge(
            "repro_serve_queue_depth",
            help="Current ingest queue depth.", unit="frames")
        self._depth_hist = registry.histogram(
            "repro_serve_queue_depth_at_enqueue",
            help="Queue depth observed at each accepted enqueue.",
            unit="frames")
        self._latency_hist = registry.histogram(
            "repro_serve_ingest_latency_seconds",
            help="Dwell time between frame enqueue and monitor dispatch.",
            unit="seconds",
            buckets=LATENCY_BUCKETS)

    # -- producer side ----------------------------------------------------
    def offer(self, event: DataplaneEvent, source: str = "?") -> bool:
        """Accept ``event`` into the queue, or shed it (ledgered)."""
        now = self.clock()
        if len(self._frames) >= self.max_depth:
            self.shed += 1
            self.last_shed_at = now
            self._saturated = True
            self._shed_total.inc()
            self.ledger.record(
                SHED_KIND, "(ingest)", f"source={source}", now,
                (IMPACT_MISSED, IMPACT_FALSE))
            return False
        self._depth_hist.observe(float(len(self._frames)))
        self._frames.append((event, now))
        self.accepted += 1
        self._ingested_total.inc()
        self._depth_gauge.set(float(len(self._frames)))
        if len(self._frames) >= self.high_mark * self.max_depth:
            self._saturated = True
        return True

    # -- consumer side ----------------------------------------------------
    def take_batch(self, max_events: int = 256) -> List[DataplaneEvent]:
        """Pop up to ``max_events`` frames, oldest first."""
        now = self.clock()
        batch: List[DataplaneEvent] = []
        while self._frames and len(batch) < max_events:
            event, enqueued_at = self._frames.popleft()
            self._latency_hist.observe(max(0.0, now - enqueued_at))
            batch.append(event)
        self._depth_gauge.set(float(len(self._frames)))
        return batch

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    def ready(self) -> bool:
        """Backpressure-aware readiness (with hysteresis).

        Not-ready while saturated; ready again only once depth is back
        under ``low_mark * max_depth`` and the last shed is older than
        ``shed_window`` seconds.
        """
        if self._saturated:
            if len(self._frames) > self.low_mark * self.max_depth:
                return False
            if self.last_shed_at is not None \
                    and self.clock() - self.last_shed_at < self.shed_window:
                return False
            self._saturated = False
        return True

    def unready_reasons(self) -> List[str]:
        """Human-readable reasons ``ready()`` is False (empty if ready)."""
        reasons: List[str] = []
        if self._saturated:
            if len(self._frames) > self.low_mark * self.max_depth:
                reasons.append(
                    f"queue depth {len(self._frames)} above low mark "
                    f"{self.low_mark * self.max_depth:g}")
            if self.last_shed_at is not None:
                since = self.clock() - self.last_shed_at
                if since < self.shed_window:
                    reasons.append(
                        f"shed {since:.3f}s ago (window {self.shed_window:g}s)")
        return reasons

    def stats(self) -> dict:
        """A JSON-able accounting of this queue's lifetime."""
        return {
            "depth": len(self._frames),
            "max_depth": self.max_depth,
            "accepted": self.accepted,
            "shed": self.shed,
            "last_shed_at": self.last_shed_at,
            "ready": self.ready(),
        }
