"""The live controller daemon behind ``repro serve``.

One asyncio event loop owns everything: TCP ingest servers and pipe
readers feed frames into the bounded :class:`~repro.serve.ingest.IngestQueue`;
a dispatcher coroutine drains it in batches through the monitor's
compiled ``observe_batch`` hot path; a poller coroutine drives
:class:`~repro.telemetry.StatsPoller` on the wall clock; and the HTTP
plane answers ``/metrics``, ``/stats``, ``/healthz``, ``/readyz`` and
``/trace`` between batches.  Single-loop concurrency is the point —
the monitor is single-threaded by design (it models one switch-local
monitor), so nothing here needs a lock.

Shutdown is a drain, not a kill: SIGTERM (or :meth:`ServeDaemon.request_stop`)
closes the ingest listeners, lets the dispatcher empty the queue, runs
``Monitor.stop()`` (which drains deferred split-mode ops and closes
spans), takes one final stats sample, and emits a
:class:`~repro.serve.report.ServeDegradationReport` with the
detection-uncertainty interval for everything that was shed along the
way.

Tests and benchmarks run the daemon with :func:`serve_in_thread`, which
boots the loop in a background thread and hands back a
:class:`DaemonHandle` whose ``stop()`` returns the final report.
"""

from __future__ import annotations

import asyncio
import json
import signal
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.monitor import Monitor
from ..fabric import SupervisorPolicy
from ..netsim.chaos import PROFILES
from ..netsim.clock import WallClock
from ..netsim.serialize import FRAME_MAGIC
from ..resilience import build_monitor, build_sharded_monitor
from ..telemetry import (
    MetricsRegistry,
    NullTracer,
    SpanWriter,
    StatsPoller,
    Tracer,
    render_prometheus,
)
from .http import HttpPlane, json_response, start_http
from .ingest import FrameError, IngestQueue, parse_frame
from .report import ServeDegradationReport

_U32 = struct.Struct(">I")


def parse_ingest_spec(spec: str) -> Tuple[str, object]:
    """``"tcp:PORT"`` → ``("tcp", port)``; ``"pipe:PATH"`` → ``("pipe", path)``."""
    kind, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise ValueError(f"ingest spec {spec!r} must be tcp:PORT or pipe:PATH")
    if kind == "tcp":
        try:
            return ("tcp", int(rest))
        except ValueError as exc:
            raise ValueError(f"ingest spec {spec!r}: bad port {rest!r}") from exc
    if kind == "pipe":
        return ("pipe", rest)
    raise ValueError(f"ingest spec {spec!r}: unknown kind {kind!r}")


@dataclass
class ServeConfig:
    """Everything ``repro serve`` takes on the command line."""

    host: str = "127.0.0.1"
    port: int = 0                      # HTTP plane; 0 = ephemeral
    ingest: Tuple[str, ...] = ("tcp:0",)
    max_queue: int = 4096
    batch_max: int = 256
    poll_interval: float = 1.0
    chaos_profile: str = "clean"
    trace_buffer: int = 512
    spans_path: Optional[str] = None
    report_path: Optional[str] = None
    high_mark: float = 0.9
    low_mark: float = 0.5
    shed_window: float = 1.0
    max_layer: int = 7
    #: Seconds shutdown waits for in-flight ingest connections to finish
    #: sending before they are forcibly closed.  Already-received frames
    #: are always dispatched; this bounds how long a slow sender can
    #: hold the drain open.
    drain_grace: float = 1.0
    #: 0 = one monitor; N > 0 = drain the queue into a ShardedMonitor
    #: fabric of N shards (``--shards``).
    shards: int = 0
    shard_mode: str = "mp"
    #: mp fabric supervision: worker restarts allowed per shard before
    #: the shard is declared failed (``--restart-budget``).
    restart_budget: int = 5
    #: events per shard between recovery checkpoints
    #: (``--checkpoint-interval``).
    checkpoint_interval: int = 2048

    def __post_init__(self) -> None:
        if self.chaos_profile not in PROFILES:
            raise ValueError(
                f"unknown chaos profile {self.chaos_profile!r}; "
                f"choose from {sorted(PROFILES)}")
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards}")
        if self.shard_mode not in ("inprocess", "mp"):
            raise ValueError(
                f"unknown shard mode {self.shard_mode!r}; "
                "choose inprocess or mp")
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, "
                f"got {self.checkpoint_interval}")
        for spec in self.ingest:
            parse_ingest_spec(spec)  # validate early, fail before boot


class ServeDaemon:
    """A monitor wrapped in an event loop, a queue, and a health plane."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        clock: Optional[WallClock] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else WallClock()
        self.registry = MetricsRegistry(time_fn=self.clock.now)
        if monitor is not None:
            self.monitor = monitor
        elif self.config.shards > 0:
            self.monitor = build_sharded_monitor(
                PROFILES[self.config.chaos_profile],
                num_shards=self.config.shards,
                mode=self.config.shard_mode,
                registry=self.registry,
                supervision=SupervisorPolicy(
                    restart_budget=self.config.restart_budget,
                    checkpoint_interval=self.config.checkpoint_interval))
        else:
            self.monitor = build_monitor(
                PROFILES[self.config.chaos_profile], registry=self.registry)
        # Duck-typed: a ShardedMonitor (supervised fabric) answers the
        # liveness methods; a plain Monitor has no shards to report on.
        self._fabric = (
            self.monitor if hasattr(self.monitor, "shard_liveness")
            else None)
        # trace_buffer 0 disables span emission entirely: /trace serves
        # nothing and dispatch takes the plain observe_batch path.
        self.tracer: Tracer = (
            Tracer(max_spans=self.config.trace_buffer)
            if self.config.trace_buffer > 0 else NullTracer())
        self.monitor.tracer = self.tracer
        self._span_writer: Optional[SpanWriter] = None
        if self.config.spans_path:
            self._span_writer = SpanWriter(
                self.config.spans_path, tracer=self.tracer)
        self.queue = IngestQueue(
            self.config.max_queue,
            ledger=self.monitor.ledger,
            clock=self.clock.now,
            registry=self.registry,
            high_mark=self.config.high_mark,
            low_mark=self.config.low_mark,
            shed_window=self.config.shed_window,
        )
        self.poller = StatsPoller(
            self.registry,
            interval=self.config.poll_interval,
            clock=self.clock.now,
        )
        self._frame_errors = self.registry.counter(
            "repro_serve_frame_errors_total",
            help="Ingest lines that failed to parse as event frames.")
        self._uptime_gauge = self.registry.gauge(
            "repro_serve_uptime_seconds",
            help="Seconds since the daemon started.", unit="seconds")

        self.plane = HttpPlane({
            "/metrics": self._ep_metrics,
            "/stats": self._ep_stats,
            "/healthz": self._ep_healthz,
            "/readyz": self._ep_readyz,
            "/trace": self._ep_trace,
        })

        #: Bound ports, filled once :meth:`run` has opened its listeners.
        self.http_port: Optional[int] = None
        self.ingest_ports: List[int] = []
        #: Set once the loop is up and listeners are bound (cross-thread).
        self.started = threading.Event()
        #: Optional callback fired (in-loop) once listeners are bound —
        #: the CLI uses it to print the actual ports under ``--port 0``.
        self.on_started: Optional[Callable[["ServeDaemon"], None]] = None
        self.report: Optional[ServeDegradationReport] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._wake: Optional[asyncio.Event] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._pipe_threads: List[threading.Thread] = []
        self._conn_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------
    async def run(self) -> ServeDegradationReport:
        """Boot, serve until stopped, drain, and return the final report."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopping = asyncio.Event()
        self._wake = asyncio.Event()
        self.monitor.start(0.0)

        http_server, self.http_port = await start_http(
            self.plane, self.config.host, self.config.port)
        self._servers.append(http_server)
        for spec in self.config.ingest:
            kind, arg = parse_ingest_spec(spec)
            if kind == "tcp":
                server = await asyncio.start_server(
                    self._handle_ingest_conn,
                    host=self.config.host, port=arg)
                self._servers.append(server)
                self.ingest_ports.append(server.sockets[0].getsockname()[1])
            else:
                self._start_pipe_reader(str(arg))

        installed_signals: List[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed_signals.append(signum)
            except (NotImplementedError, ValueError, RuntimeError):
                break  # not the main thread (tests) or unsupported platform

        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        poller = asyncio.ensure_future(self._poll_loop())
        self.started.set()
        if self.on_started is not None:
            self.on_started(self)
        try:
            await self._stopping.wait()
            # Stop accepting: new connections get refused.  In-flight
            # connections get a bounded grace to finish sending (their
            # frames still count), then are forcibly closed.
            for server in self._servers:
                server.close()
            for server in self._servers:
                await server.wait_closed()
            if self._conn_tasks:
                _, lingering = await asyncio.wait(
                    set(self._conn_tasks),
                    timeout=self.config.drain_grace)
                for task in lingering:
                    task.cancel()
                if lingering:
                    await asyncio.gather(*lingering, return_exceptions=True)
            await dispatcher          # exits once the queue is drained
            await poller
        finally:
            for signum in installed_signals:
                loop.remove_signal_handler(signum)
        return self._finalize()

    def request_stop(self) -> None:
        """Begin graceful shutdown; safe to call from any thread."""
        loop = self._loop
        if loop is None or self._stopping is None:
            return
        def _set() -> None:
            self._stopping.set()
            self._wake.set()
        loop.call_soon_threadsafe(_set)

    def _finalize(self) -> ServeDegradationReport:
        now = self.clock.now()
        self._uptime_gauge.set(now)
        summary = self.monitor.stop(now=now)
        # Shard rows are read after stop() so restarts that happened
        # during the final drain are counted.  The quiesce quits every
        # healthy worker, so post-stop "down but not failed" means
        # "shut down", not "rebuilding".
        shard_rows = (
            self._fabric.shard_liveness() if self._fabric is not None
            else [])
        for row in shard_rows:
            if not row.get("failed"):
                row["recovering"] = False
        # One last sample so the poller's tail reflects the drained state.
        self.poller.sample(now)
        if self._span_writer is not None:
            self._span_writer.close()
        observed = int(summary["events"])
        lo, hi = summary["violations_interval"]  # type: ignore[misc]
        self.report = ServeDegradationReport(
            profile=self.config.chaos_profile,
            uptime=now,
            events_ingested=self.queue.accepted,
            events_shed=self.queue.shed,
            events_observed=observed,
            violations=int(summary["violations"]),
            interval=(int(lo), int(hi)),
            live_instances=int(summary["live_instances"]),
            pending_ops=int(summary["pending_ops"]),
            frame_errors=int(self._frame_errors.value),
            queue=self.queue.stats(),
            ledger=dict(summary["ledger"]),  # type: ignore[arg-type]
            http_requests=self.plane.requests_served,
            shards=shard_rows,
            shard_restarts=sum(
                int(r.get("restarts", 0)) for r in shard_rows),
            quarantined_batches=sum(
                int(r.get("quarantined_batches", 0)) for r in shard_rows),
            failed_shards=[
                int(r["shard"]) for r in shard_rows if r.get("failed")],
        )
        if self.config.report_path:
            with open(self.config.report_path, "w", encoding="utf-8") as fp:
                json.dump(self.report.to_dict(), fp, indent=2, sort_keys=True)
                fp.write("\n")
        return self.report

    # -- ingest ------------------------------------------------------------
    async def _handle_ingest_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer = writer.get_extra_info("peername")
        source = f"tcp:{peer[1]}" if isinstance(peer, tuple) else "tcp:?"
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            # Sniff the first four bytes: an RPF1 magic switches the
            # connection to the framed binary codec, anything else is
            # treated as the start of a JSONL stream.
            try:
                head = await reader.readexactly(4)
            except asyncio.IncompleteReadError as exc:
                head = exc.partial  # connection shorter than the magic
            if head == FRAME_MAGIC:
                await self._read_framed(reader, source)
            elif head:
                buf = head + await reader.readline()
                for line in buf.splitlines():
                    self._offer_line(line, source)
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    self._offer_line(line, source)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    def _offer_line(self, line: bytes, source: str) -> None:
        try:
            event = parse_frame(line, max_layer=self.config.max_layer)
        except FrameError:
            self._frame_errors.inc()
            return
        if event is None:
            return  # blank line or trace header
        self.queue.offer(event, source=source)
        if self._wake is not None:
            self._wake.set()

    async def _read_framed(self, reader: asyncio.StreamReader,
                           source: str) -> None:
        """Drain an RPF1 framed stream: repeated batches of
        magic + u32 count + per-event (u32 length + JSON payload).

        The payloads are the same JSON dicts the JSONL codec writes, so
        each one goes through the ordinary frame parser.  A truncated
        batch counts as one frame error; everything decoded before the
        truncation still reaches the queue.
        """
        first = True
        while True:
            if not first:
                try:
                    magic = await reader.readexactly(4)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self._frame_errors.inc()
                    return
                if magic != FRAME_MAGIC:
                    self._frame_errors.inc()
                    return
            first = False
            try:
                (count,) = _U32.unpack(await reader.readexactly(4))
                for _ in range(count):
                    (size,) = _U32.unpack(await reader.readexactly(4))
                    payload = await reader.readexactly(size)
                    self._offer_line(payload, source)
            except asyncio.IncompleteReadError:
                self._frame_errors.inc()
                return

    def _start_pipe_reader(self, path: str) -> None:
        loop = self._loop
        assert loop is not None

        source = f"pipe:{path}"

        def offer(data: bytes) -> None:
            loop.call_soon_threadsafe(self._offer_line, data, source)

        def frame_error() -> None:
            loop.call_soon_threadsafe(self._frame_errors.inc)

        def read_exact(fp, size: int) -> Optional[bytes]:
            chunk = fp.read(size)
            return chunk if chunk is not None and len(chunk) == size else None

        def read_framed(fp) -> None:
            # First magic was consumed by the sniff; subsequent batches
            # each lead with their own.
            while True:
                raw = read_exact(fp, 4)
                if raw is None:
                    frame_error()
                    return
                (count,) = _U32.unpack(raw)
                for _ in range(count):
                    raw = read_exact(fp, 4)
                    payload = raw and read_exact(fp, _U32.unpack(raw)[0])
                    if not payload:
                        frame_error()
                        return
                    offer(payload)
                magic = fp.read(4)
                if not magic:
                    return  # clean EOF between batches
                if magic != FRAME_MAGIC:
                    frame_error()
                    return

        def read_pipe() -> None:
            # Blocking reads in a daemon thread: a FIFO open blocks until
            # a writer connects, which must not stall the event loop.
            # The same four-byte sniff as TCP ingest picks JSONL or RPF1.
            try:
                with open(path, "rb") as fp:
                    head = fp.read(4)
                    if head == FRAME_MAGIC:
                        read_framed(fp)
                    elif head:
                        for line in (head + fp.readline()).splitlines():
                            offer(line)
                        for line in fp:
                            offer(line)
            except OSError:
                pass  # pipe vanished; the daemon keeps serving
            except RuntimeError:
                pass  # loop shut down mid-read; remaining lines are lost

        thread = threading.Thread(
            target=read_pipe, name=f"repro-serve-pipe:{path}", daemon=True)
        thread.start()
        self._pipe_threads.append(thread)

    # -- loop bodies -------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._stopping is not None and self._wake is not None
        while True:
            batch = self.queue.take_batch(self.config.batch_max)
            if batch:
                self._dispatch(batch)
                continue
            if self._stopping.is_set() and not self._conn_tasks:
                return  # stopped, ingest quiesced, and drained
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass

    def _dispatch(self, batch: List) -> None:
        """Feed one batch to the monitor, wrapping each event in a root
        span so ``/trace`` can answer "what happened to packet uid N?".

        With tracing disabled (``trace_buffer=0``) this is a straight
        ``observe_batch`` call — the same entry point replay uses.
        """
        if not self.tracer.enabled:
            self.monitor.observe_batch(batch)
            return
        tracer = self.tracer
        monitor = self.monitor
        for event in batch:
            packet = getattr(event, "packet", None)
            root = tracer.start(
                type(event).__name__, event.time,
                uid=packet.uid if packet is not None else None,
                root=True, switch=event.switch_id)
            monitor.observe(event)
            tracer.end(root, monitor.now)

    async def _poll_loop(self) -> None:
        assert self._stopping is not None
        while not self._stopping.is_set():
            self._uptime_gauge.set(self.clock.now())
            if self._fabric is not None:
                # Heartbeat the shard workers even while ingest is idle,
                # so a crashed worker is noticed and restarted before the
                # next batch arrives.
                self._fabric.tick()
            self.poller.poll()
            delay = max(0.01, min(self.poller.seconds_until_due(), 0.25))
            try:
                await asyncio.wait_for(self._stopping.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass

    # -- endpoints ---------------------------------------------------------
    def _ep_metrics(self, query: Mapping[str, str]) -> Tuple[int, str, str]:
        self._uptime_gauge.set(self.clock.now())
        return (200, "text/plain; version=0.0.4",
                render_prometheus(self.registry.snapshot()))

    def _ep_stats(self, query: Mapping[str, str]) -> Tuple[int, str, str]:
        return json_response(200, self.stats_payload())

    def _shard_health(self) -> Tuple[List[int], List[int]]:
        """(recovering shard indices, failed shard indices) — both empty
        for a plain monitor or an all-healthy fabric."""
        if self._fabric is None:
            return [], []
        recovering = list(self._fabric.recovering_shards())
        failed = [row["shard"] for row in self._fabric.shard_liveness()
                  if row.get("failed")]
        return recovering, failed

    def _ep_healthz(self, query: Mapping[str, str]) -> Tuple[int, str, str]:
        recovering, failed = self._shard_health()
        payload: Dict[str, object] = {
            "status": "degraded" if (recovering or failed) else "ok",
            "uptime": self.clock.now(),
            "profile": self.config.chaos_profile,
        }
        if self._fabric is not None:
            payload["shards"] = self._fabric.shard_liveness()
        return json_response(200, payload)

    def _ep_readyz(self, query: Mapping[str, str]) -> Tuple[int, str, str]:
        reasons = self.queue.unready_reasons()
        recovering, failed = self._shard_health()
        if recovering:
            reasons = [f"shard_recovering:{idx}" for idx in recovering] \
                + reasons
        if failed:
            reasons = [f"shard_failed:{idx}" for idx in failed] + reasons
        if self._stopping is not None and self._stopping.is_set():
            reasons = ["shutting down"] + reasons
        ready = not reasons and self.queue.ready()
        return json_response(200 if ready else 503, {
            "ready": ready,
            "reasons": reasons,
            "queue": self.queue.stats(),
        })

    def _ep_trace(self, query: Mapping[str, str]) -> Tuple[int, str, str]:
        try:
            limit = int(query.get("limit", "100"))
            uid = int(query["uid"]) if "uid" in query else None
        except ValueError:
            return json_response(400, {"error": "limit/uid must be integers"})
        spans = self.tracer.recent(limit=limit, uid=uid)
        return json_response(200, {
            "count": len(spans),
            "spans": [span.to_dict() for span in spans],
        })

    def stats_payload(self) -> Dict[str, object]:
        """The ``/stats`` body: a live JSON digest of daemon state."""
        observed_violations = len(self.monitor.violations)
        payload: Dict[str, object] = {
            "time": self.clock.now(),
            "profile": self.config.chaos_profile,
            "queue": self.queue.stats(),
            "frame_errors": int(self._frame_errors.value),
            "monitor": {
                "events": int(self.monitor.stats.events),
                "violations": observed_violations,
                "interval": list(
                    self.monitor.ledger.interval(observed_violations)),
                "live_instances": self.monitor.live_instances(),
                "pending_ops": self.monitor.pending_op_count(),
            },
            "poller_samples": len(self.poller.samples),
            "http_requests": self.plane.requests_served,
        }
        if self._fabric is not None:
            rows = self._fabric.shard_liveness()
            recovering, failed = self._shard_health()
            payload["shards"] = {
                "count": len(rows),
                "recovering": recovering,
                "failed": failed,
                "restarts": sum(int(r.get("restarts", 0)) for r in rows),
                "quarantined_batches": sum(
                    int(r.get("quarantined_batches", 0)) for r in rows),
                "liveness": rows,
            }
        return payload


@dataclass
class DaemonHandle:
    """A daemon running in a background thread (tests, benchmarks)."""

    daemon: ServeDaemon
    thread: threading.Thread
    error: List[BaseException] = field(default_factory=list)

    def stop(self, timeout: float = 30.0) -> ServeDegradationReport:
        """Request a graceful drain and return the final report."""
        self.daemon.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve daemon did not drain within timeout")
        if self.error:
            raise self.error[0]
        assert self.daemon.report is not None
        return self.daemon.report


def serve_in_thread(
    daemon: ServeDaemon, start_timeout: float = 10.0
) -> DaemonHandle:
    """Boot ``daemon`` in a background thread and wait until it is bound."""
    errors: List[BaseException] = []

    def target() -> None:
        try:
            asyncio.run(daemon.run())
        except BaseException as exc:  # surfaced by DaemonHandle.stop
            errors.append(exc)

    thread = threading.Thread(
        target=target, name="repro-serve", daemon=True)
    thread.start()
    if not daemon.started.wait(start_timeout):
        if errors:
            raise errors[0]
        raise RuntimeError("serve daemon failed to start within timeout")
    return DaemonHandle(daemon=daemon, thread=thread, error=errors)
