"""A minimal HTTP/1.1 observability plane on raw asyncio streams.

Deliberately not ``http.server``: the daemon already owns an asyncio
event loop for ingest, and a threaded HTTP server would force locks
around the monitor.  Serving the four read-only endpoints from the same
loop means every response is a consistent point-in-time view — the
snapshot renders between batches, never mid-``observe``.

The protocol subset is exactly what ``curl`` and a Prometheus scraper
need: request-line + headers in, ``Content-Length``-framed response out,
``Connection: close`` always (scrape intervals dwarf connection setup,
and keep-alive bookkeeping is where toy HTTP servers grow bugs).
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: A route handler: ``(query) -> (status, content_type, body)``.
Handler = Callable[[Mapping[str, str]], Tuple[int, str, str]]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

#: Cap on request head size — this plane serves scrapers, not uploads.
MAX_REQUEST_BYTES = 16 * 1024


def json_response(status: int, payload: object) -> Tuple[int, str, str]:
    """Helper for handlers returning JSON bodies."""
    return (status, "application/json",
            json.dumps(payload, sort_keys=True, indent=2) + "\n")


class HttpPlane:
    """Route table + asyncio connection handler for the health plane."""

    def __init__(self, routes: Optional[Dict[str, Handler]] = None) -> None:
        self.routes: Dict[str, Handler] = dict(routes or {})
        self.requests_served = 0

    def route(self, path: str, handler: Handler) -> None:
        self.routes[path] = handler

    async def handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve exactly one request on this connection, then close."""
        try:
            status, content_type, body = await self._respond(reader)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            ).encode("ascii")
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to clean up but the socket
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, str]:
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return json_response(400, {"error": "unreadable request"})
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return json_response(400, {"error": "malformed request line"})
        method, target = parts[0], parts[1]
        # Drain headers so well-behaved clients are not reset mid-send.
        consumed = len(request_line)
        while True:
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            if consumed > MAX_REQUEST_BYTES:
                return json_response(400, {"error": "request head too large"})
        if method not in ("GET", "HEAD"):
            return json_response(405, {"error": f"method {method} not allowed"})
        split = urlsplit(target)
        handler = self.routes.get(split.path)
        if handler is None:
            return json_response(
                404,
                {"error": f"no route {split.path}",
                 "routes": sorted(self.routes)})
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        self.requests_served += 1
        return handler(query)


async def start_http(
    plane: HttpPlane, host: str, port: int
) -> Tuple[asyncio.base_events.Server, int]:
    """Bind the plane; returns ``(server, bound_port)`` (port 0 = pick)."""
    server = await asyncio.start_server(plane.handle, host=host, port=port)
    bound = server.sockets[0].getsockname()[1]
    return server, bound
