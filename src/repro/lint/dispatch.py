"""Dispatch-plan lint pass: the property's hot-path cost surface.

The monitor engine builds a per-event-class dispatch plan for every
registered property (:mod:`repro.core.compile`): each concrete dataplane
event class maps to the exact (stage, role) watchers that could match
it.  This pass surfaces that plan statically — how many watchers each
event kind wakes — and warns (``L015``) when a stage forces the *worst*
dispatch shape: a full-population scan on a hot packet kind.

A stage scans when its index plan is empty — no equality guard against
an earlier binding and no ``same_packet_as`` linkage — so every live
instance must be examined on every matching event.  That is intrinsic
for multiple-match properties like the paper's link-down example, but
there the scanned kind is a rare out-of-band event; the warning fires
only for per-packet kinds (arrival / egress / drop), where the scan
turns per-event cost from O(1) into O(live instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.compile import dispatch_summary, scan_watchers
from ..core.spec import PropertySpec
from .diagnostics import Diagnostic, make

#: event-kind labels that fire per packet — a scan here is on the hot path.
HOT_KINDS = ("arrival", "egress", "drop")


@dataclass(frozen=True)
class DispatchReport:
    """The static dispatch shape of one property."""

    prop: str
    #: watchers per event-kind label, e.g. ``{"arrival": 2, "egress": 1}``
    watchers: Tuple[Tuple[str, int], ...]
    #: (kind label, stage name, role) of every full-population scan
    scans: Tuple[Tuple[str, str, str], ...]

    @property
    def hot_scans(self) -> Tuple[Tuple[str, str, str], ...]:
        return tuple(s for s in self.scans if s[0] in HOT_KINDS)

    def watchers_by_kind(self) -> Dict[str, int]:
        return dict(self.watchers)


def analyze_dispatch(spec: PropertySpec) -> DispatchReport:
    """Derive the dispatch shape the engine would build for ``spec``."""
    summary = dispatch_summary(spec)
    return DispatchReport(
        prop=spec.name,
        watchers=tuple(sorted(summary.items())),
        scans=tuple(scan_watchers(spec)),
    )


def dispatch_diagnostics(
    report: DispatchReport, anchor: object = None
) -> List[Diagnostic]:
    """``L015`` for each stage scanning the population on a packet kind."""
    out: List[Diagnostic] = []
    for kind, stage, role in report.hot_scans:
        out.append(make(
            "L015",
            f"stage {stage!r} has no indexable guard, so every live "
            f"instance is scanned on every {kind} event — bind a "
            f"correlating field at an earlier stage or guard on one "
            f"(role: {role})",
            anchor,
            prop=report.prop,
        ))
    return out
