"""Taint and resource-bound analysis (rules L017–L019).

The monitor holds per-instance state keyed by values copied out of
events.  When every one of those values comes from fields an end host
controls outright — packet headers, which the switch parses from
whatever bytes arrive — the *monitor itself* becomes the attack surface:
a sender minting fresh key values mints fresh instances, and the
property that was supposed to watch the network instead exhausts the
switch's state budget (the paper's Sec. 4 resource concern, turned
adversarial).

This pass assigns each bound variable a provenance label and propagates
labels through the same pin/alias/range machinery the cross-stage
contradiction rule (L016, :mod:`repro.lint.dataflow`) uses:

* ``constant`` — the bind's field is guarded equal to a literal, so the
  variable holds one value in every instance; nobody controls it.
* ``trusted`` — the field's value is supplied by the switch, not the
  sender (``in_port``, ``egress.action``, …; see
  :data:`repro.core.features.TRUSTED_FIELDS`).
* ``attacker-controlled`` — everything else, packet headers above all.

Labels are ranked ``constant < trusted < attacker-controlled`` and only
ever *fall* when guards are added (a stronger guard pins more, never
less) — the monotonicity the property-based tests lean on.

Three findings come out, each with a derivation chain in ``related``:

* **L017 attacker-keyed instance creation** — every instance-key
  variable is attacker-controlled and stage 0 matches a plain packet
  event: one sender can flood the instance table.  The finding carries a
  worst-case instance bound (key cardinality × stage-0 event fan-out)
  and a suggested :class:`~repro.core.degradation.DegradationPolicy`
  cap.
* **L018 timeout-evasion window** — a ``within`` deadline whose opening
  stages are all attacker-matchable: the sender decides when the clock
  starts, so pacing just inside (or outside) the deadline sidesteps it.
* **L019 tainted violation predicate** — every stage on the violating
  path is attacker-matchable: the violation itself can be fabricated
  end to end, so alerts from this property are spoofable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.features import (
    ATTACKER_CONTROLLED,
    TRUSTED,
    field_provenance,
)
from ..lang.ast import (
    AnyDiffers,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    VarRef,
)
from .dataflow import Interval, Pin, Range, StageEnv
from .diagnostics import Diagnostic, make, related_to
from .schema import field_bits

#: label for a variable pinned to a single literal value
CONSTANT = "constant"

#: labels in increasing attacker power; index = rank
LABEL_ORDER = (CONSTANT, TRUSTED, ATTACKER_CONTROLLED)

#: event kinds an end host can trigger just by sending a packet
_ATTACKER_KINDS = ("arrival", "packet")

#: worst-case instance bounds saturate here (2^63 - 1)
MAX_BOUND = (1 << 63) - 1


def label_rank(label: str) -> int:
    return LABEL_ORDER.index(label)


def _max_label(labels: Iterator[str]) -> str:
    return max(labels, key=label_rank, default=CONSTANT)


@dataclass(frozen=True)
class VarTaint:
    """Provenance of one bound variable."""

    var: str
    label: str
    field: str  # the field the variable was bound from
    stage: str
    reason: str  # one-line derivation, rendered in notes and --json
    bind: object = None  # the BindAst node, for positions
    #: static interval when the binding pattern bounds the field (used to
    #: shrink the worst-case key cardinality)
    interval: Optional[Interval] = None

    def cardinality(self) -> int:
        """Worst-case number of distinct values this variable can take."""
        if self.label == CONSTANT:
            return 1
        if self.interval is not None:
            lo, lo_strict, hi, hi_strict = self.interval
            if isinstance(lo, int) and isinstance(hi, int):
                count = hi - lo + 1 - int(lo_strict) - int(hi_strict)
                return max(1, min(count, MAX_BOUND))
        return min(1 << field_bits(self.field), MAX_BOUND)


@dataclass
class TaintReport:
    """Everything the taint pass derived about one property."""

    prop: str
    labels: Dict[str, VarTaint] = field(default_factory=dict)
    key_vars: Tuple[str, ...] = ()
    #: highest label across the key variables
    key_label: str = CONSTANT
    #: worst-case live instances (key cardinality × stage-0 fan-out)
    instance_bound: int = 1
    #: True when the bound saturated at MAX_BOUND
    capped: bool = False
    #: per-stage: can an end host alone make this stage's pattern match?
    attacker_matchable: Tuple[bool, ...] = ()
    #: cap a DegradationPolicy should impose (None when the key is safe)
    suggested_max_instances: Optional[int] = None


def _pattern_fields(pattern: PatternAst) -> Iterator[Tuple[str, object]]:
    """(field, anchor-node) for every field a pattern reads."""
    for condition in pattern.conditions:
        if isinstance(condition, Comparison):
            yield condition.field, condition
        elif isinstance(condition, AnyDiffers):
            for name, _ in condition.pairs:
                yield name, condition


def _is_attacker_matchable(
    pattern: PatternAst, labels: Dict[str, VarTaint]
) -> bool:
    """Can a sender alone produce an event this pattern matches?

    Conservative in the claiming direction: a named predicate is opaque,
    and a guard on a trusted field (``in_port == 3``) needs the network
    to cooperate — either one withholds the "attacker-matchable" claim.
    A guard comparing an attacker field against a *trusted* variable also
    withholds it: the sender would have to guess the switch-supplied
    value.
    """
    if pattern.kind not in _ATTACKER_KINDS:
        return False
    for condition in pattern.conditions:
        if isinstance(condition, NamedPredicate):
            return False
        if isinstance(condition, Comparison):
            if field_provenance(condition.field) != ATTACKER_CONTROLLED:
                return False
            if isinstance(condition.value, VarRef):
                taint = labels.get(condition.value.name)
                if taint is not None and taint.label == TRUSTED:
                    return False
        elif isinstance(condition, AnyDiffers):
            for name, _ in condition.pairs:
                if field_provenance(name) != ATTACKER_CONTROLLED:
                    return False
    return True


def _bind_taints(
    stage: StageAst, env: StageEnv, labels: Dict[str, VarTaint]
) -> List[VarTaint]:
    """Labels for the variables one stage binds.

    ``env`` must already have absorbed the stage, so its own pins,
    aliases, and ranges are visible.
    """
    out: List[VarTaint] = []
    for bind in stage.pattern.binds:
        pin = env.pins.get(bind.var)
        alias = env.aliases.get(bind.var)
        rng = env.ranges.get(bind.var)
        if isinstance(pin, Pin) and pin.stage == stage.name:
            out.append(VarTaint(
                var=bind.var, label=CONSTANT, field=bind.field,
                stage=stage.name, bind=bind,
                reason=f"pinned to {pin.rendered} by a guard on "
                       f"{bind.field}"))
            continue
        if alias is not None and alias.stage == stage.name:
            source = labels.get(alias.other)
            label = source.label if source else ATTACKER_CONTROLLED
            out.append(VarTaint(
                var=bind.var, label=label, field=bind.field,
                stage=stage.name, bind=bind,
                interval=source.interval if source else None,
                reason=f"aliases ${alias.other} ({label})"))
            continue
        provenance = field_provenance(bind.field)
        interval = None
        if isinstance(rng, Range) and rng.stage == stage.name:
            interval = rng.interval
        out.append(VarTaint(
            var=bind.var, label=provenance, field=bind.field,
            stage=stage.name, bind=bind, interval=interval,
            reason=f"bound from {provenance} field {bind.field}"
                   + ("" if interval is None else " (interval-bounded)")))
    return out


def analyze_taint(prop: PropertyAst) -> TaintReport:
    """Label every bound variable and bound the instance table."""
    report = TaintReport(prop=prop.name)
    env = StageEnv()
    matchable: List[bool] = []
    for stage in prop.stages:
        env.absorb(stage)
        for taint in _bind_taints(stage, env, report.labels):
            report.labels[taint.var] = taint
        # matchability may depend on labels of earlier-stage variables,
        # which are all recorded by now
        matchable.append(_is_attacker_matchable(stage.pattern, report.labels))
    report.attacker_matchable = tuple(matchable)

    first = prop.stages[0]
    report.key_vars = prop.key_vars or tuple(
        b.var for b in first.pattern.binds)
    key_taints = [
        report.labels.get(v) for v in report.key_vars
        if report.labels.get(v) is not None
    ]
    report.key_label = _max_label(t.label for t in key_taints)

    fan_out = 3 if first.pattern.kind == "packet" else 1
    bound = fan_out
    for taint in key_taints:
        bound *= taint.cardinality()
        if bound >= MAX_BOUND:
            bound = MAX_BOUND
            report.capped = True
            break
    report.instance_bound = bound
    if report.key_label == ATTACKER_CONTROLLED:
        from ..core.degradation import suggested_policy
        report.suggested_max_instances = suggested_policy(
            report.instance_bound, attacker_keyed=True).max_instances
    return report


def taint_diagnostics(
    prop: PropertyAst, report: TaintReport
) -> List[Diagnostic]:
    """The L017/L018/L019 findings for one analyzed property."""
    out: List[Diagnostic] = []
    out.extend(_attacker_keyed(prop, report))
    out.extend(_timeout_evasion(prop, report))
    out.extend(_tainted_violation(prop, report))
    return out


def _key_chain(report: TaintReport):
    return tuple(
        related_to(
            f"key ${taint.var} is {taint.label} here: {taint.reason}",
            taint.bind)
        for v in report.key_vars
        for taint in [report.labels.get(v)]
        if taint is not None
    )


def _attacker_keyed(
    prop: PropertyAst, report: TaintReport
) -> Iterator[Diagnostic]:
    """L017 — the whole instance key is attacker-controlled.

    A key with even one pinned or trusted component is spared: the flood
    argument needs *every* coordinate freely mintable, and the catalog's
    load-balancer properties (vip pinned to the service address) are the
    counterexample this condition is calibrated against.
    """
    if not report.key_vars:
        return
    key_taints = [report.labels.get(v) for v in report.key_vars]
    if not all(t is not None and t.label == ATTACKER_CONTROLLED
               for t in key_taints):
        return
    if prop.stages[0].pattern.kind not in _ATTACKER_KINDS:
        return
    key_text = ", ".join(f"${v}" for v in report.key_vars)
    bound_text = ("≥2^63" if report.capped
                  else f"{report.instance_bound:,}")
    yield make(
        "L017",
        f"instance key ({key_text}) is entirely attacker-controlled: one "
        f"sender can mint up to {bound_text} instances; suggest a "
        f"DegradationPolicy cap (max_instances="
        f"{report.suggested_max_instances})",
        prop.stages[0], prop=prop.name, related=_key_chain(report),
    )


def _timeout_evasion(
    prop: PropertyAst, report: TaintReport
) -> Iterator[Diagnostic]:
    """L018 — a deadline whose clock the attacker starts (and restarts)."""
    for index, stage in enumerate(prop.stages):
        if index == 0 or stage.within is None:
            continue
        if not all(report.attacker_matchable[:index]):
            continue
        related = tuple(
            related_to(
                f"stage {prior.name!r} is attacker-matchable here",
                prior)
            for prior in prop.stages[:index]
        )
        refresh_note = ""
        if stage.negative and stage.refresh == "on_prior":
            refresh_note = (
                "; refresh on_prior lets the sender reset the deadline "
                "indefinitely by re-matching the prior stage"
            )
        yield make(
            "L018",
            f"stage {stage.name!r} deadline (within {stage.within:g}) is "
            f"opened purely by attacker-controlled events: a sender pacing "
            f"its traffic around the {stage.within:g}s window controls "
            f"whether the deadline ever fires{refresh_note}",
            stage, prop=prop.name, related=related,
        )


def _tainted_violation(
    prop: PropertyAst, report: TaintReport
) -> Iterator[Diagnostic]:
    """L019 — the violating trace can be fabricated end to end."""
    last = prop.stages[-1]
    if last.negative:
        return  # the violation is an absence; nobody "sends" a timeout
    if not all(report.attacker_matchable):
        return
    related = tuple(
        related_to(f"stage {stage.name!r} is attacker-matchable here", stage)
        for stage in prop.stages
    )
    yield make(
        "L019",
        f"every observation on the violating path is attacker-matchable: "
        f"a single sender can fabricate a violation of {prop.name!r} from "
        f"whole cloth, so its alerts are spoofable",
        last, prop=prop.name, related=related,
    )
