"""Compiler-calibrated cost model: measured rule-plan counts.

``repro.lint.splitmode.estimate_cost`` prices a rule-compilable property
analytically.  This module closes the estimate-vs-measured loop the same
way SNAP- and P4-style compilers validate their static resource models:
:func:`repro.backends.varanus_compiler.plan_property` walks the rule plan
the Varanus compiler actually emits and counts tables, rules, and
slow-path flow-mods per instance; the counts for a fixed calibration
corpus are checked in here (:data:`CALIBRATION`) and the estimator
consults them, surfacing measured numbers next to its own.

The corpus (:func:`calibration_corpus`) spans every structural shape the
compiler can emit — plain observe chains, deadline'd observes, ``unless``
cancels, and final ``Absent`` timer/discharge pairs — plus every Table-1
catalog property that is rule-compilable (none today: the catalog rows
all need egress taps, predicates, or out-of-band events; the corpus keeps
the loop closed until one lands).

The same loop closes over the software fast path: the
``match_strategy="codegen"`` backend reports what it actually generated
per property (event classes emitted, inline boolean terms, matcher
source lines — :class:`repro.core.codegen.PropEmission`), a second
checked-in table (:data:`CALIBRATION_CODEGEN`) pins those counts for the
codegen corpus, and ``repro.lint.splitmode.estimate_codegen_cost``
predicts the first two analytically from the dispatch plan.

``tests/unit/test_calibration.py`` asserts three ways that none of this
can drift: the analytic estimate equals the emitted plan for every corpus
property, the checked-in tables equal the live measurements, and the
tables are regenerable byte-for-byte (``python -m tests.regen_calibration
--check`` runs in CI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.refs import Bind, Const, EventKind, EventPattern, FieldEq, FieldNe, Var
from ..core.spec import Absent, Observe, PropertySpec


@dataclass(frozen=True)
class MeasuredCost:
    """One calibration row: counts taken off the emitted rule plan."""

    instance_tables: int
    rules_per_instance: int
    flow_mods_per_instance: int


@dataclass(frozen=True)
class MeasuredCodegenCost:
    """One codegen calibration row: counts taken off the program the
    ``match_strategy="codegen"`` backend actually generated.

    ``event_classes`` and ``inline_terms`` have analytic twins in
    :func:`repro.lint.splitmode.estimate_codegen_cost` (a test holds them
    equal); ``matcher_lines`` is measured-only — the emitted source lines
    attributable to the property across every generated function.
    """

    event_classes: int
    inline_terms: int
    matcher_lines: int


#: Measured rule-plan counts per property, keyed by property name:
#: ``(instance_tables, rules_per_instance, flow_mods_per_instance)``.
#: Regenerate with ``python -m tests.regen_calibration`` after a compiler
#: change; ``--check`` verifies this table against the live compiler.
CALIBRATION: Dict[str, Tuple[int, int, int]] = {
    'cal-absent-cancel': (1, 4, 3),
    'cal-absent-final': (1, 3, 3),
    'cal-chain-2': (1, 2, 7),
    'cal-chain-3': (1, 3, 12),
    'cal-chain-cancel': (1, 4, 12),
    'cal-observe-within': (1, 3, 12),
}


def measured_cost(name: str) -> Optional[MeasuredCost]:
    """The checked-in measurement for ``name``, if it was calibrated."""
    row = CALIBRATION.get(name)
    if row is None:
        return None
    return MeasuredCost(*row)


#: Measured codegen-program counts per property, keyed by property name:
#: ``(event_classes, inline_terms, matcher_lines)``.  Regenerate with
#: ``python -m tests.regen_calibration`` after a codegen emission change;
#: ``--check`` verifies this table against the live emitter.
CALIBRATION_CODEGEN: Dict[str, Tuple[int, int, int]] = {
    'arp-cache-preloaded': (2, 8, 148),
    'arp-known-not-forwarded': (1, 4, 84),
    'arp-unknown-forwarded': (2, 5, 94),
    'cal-absent-cancel': (1, 4, 101),
    'cal-absent-final': (1, 2, 81),
    'cal-chain-2': (1, 1, 94),
    'cal-chain-3': (1, 5, 155),
    'cal-chain-cancel': (1, 7, 175),
    'cal-observe-within': (1, 5, 155),
    'dhcp-no-overlap': (1, 4, 84),
    'dhcp-no-reuse': (2, 8, 128),
    'dhcp-reply-within': (2, 3, 74),
    'ftp-data-port-matches': (1, 5, 84),
    'knocking-invalidated': (2, 9, 219),
    'knocking-recognized': (2, 11, 199),
    'lb-hashed-port': (2, 12, 108),
    'lb-round-robin-port': (2, 12, 108),
    'lb-sticky-port': (2, 26, 208),
    'no-unfounded-reply': (2, 10, 128),
}


def measured_codegen_cost(name: str) -> Optional[MeasuredCodegenCost]:
    """The checked-in codegen measurement for ``name``, if calibrated."""
    row = CALIBRATION_CODEGEN.get(name)
    if row is None:
        return None
    return MeasuredCodegenCost(*row)


# ---------------------------------------------------------------------------
# The calibration corpus: one property per compilable plan shape
# ---------------------------------------------------------------------------
def _arrival(guards=(), binds=()):
    return EventPattern(kind=EventKind.ARRIVAL, guards=tuple(guards),
                       binds=tuple(binds))


def _chain_2() -> PropertySpec:
    """The echo shape: bind at stage 0, variable guard at stage 1."""
    return PropertySpec(
        name="cal-chain-2", description="two-stage observe chain",
        stages=(
            Observe("request", _arrival(binds=(Bind("S", "ipv4.src"),))),
            Observe("response", _arrival(
                guards=(FieldEq("ipv4.dst", Var("S")),))),
        ),
        key_vars=("S",),
    )


def _chain_3() -> PropertySpec:
    """The port-knocking shape: constants at stage 0, value flow after."""
    return PropertySpec(
        name="cal-chain-3", description="three-stage knock chain",
        stages=(
            Observe("k1", _arrival(
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("K", "ipv4.src"),))),
            Observe("k2", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(7002))))),
            Observe("open", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(22))))),
        ),
        key_vars=("K",),
    )


def _chain_cancel() -> PropertySpec:
    """A knock chain whose final stage carries an ``unless`` cancel."""
    return PropertySpec(
        name="cal-chain-cancel", description="chain with a cancel rule",
        stages=(
            Observe("k1", _arrival(
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("K", "ipv4.src"),))),
            Observe("k2", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(7002))))),
            Observe("open", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(22)))),
                unless=(_arrival(
                    guards=(FieldEq("ipv4.src", Var("K")),
                            FieldEq("tcp.dst", Const(9))),),)),
        ),
        key_vars=("K",),
    )


def _observe_within() -> PropertySpec:
    """A chain whose middle stage expires (hard-timeout watcher)."""
    return PropertySpec(
        name="cal-observe-within", description="deadline'd observe chain",
        stages=(
            Observe("k1", _arrival(
                guards=(FieldEq("tcp.dst", Const(7001)),),
                binds=(Bind("K", "ipv4.src"),))),
            Observe("k2", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(7002)))), within=1.0),
            Observe("open", _arrival(
                guards=(FieldEq("ipv4.src", Var("K")),
                        FieldEq("tcp.dst", Const(22)))), within=1.0),
        ),
        key_vars=("K",),
    )


def _absent_final() -> PropertySpec:
    """The unanswered-request shape: final Absent timer/discharge pair."""
    return PropertySpec(
        name="cal-absent-final", description="request needs a reply",
        stages=(
            Observe("request", _arrival(
                guards=(FieldEq("tcp.dst", Const(80)),),
                binds=(Bind("S", "ipv4.src"),))),
            Absent("reply", _arrival(
                guards=(FieldEq("ipv4.dst", Var("S")),)), within=2.0),
        ),
        key_vars=("S",),
    )


def _absent_cancel() -> PropertySpec:
    """A final Absent with an ``unless`` excusing the obligation."""
    return PropertySpec(
        name="cal-absent-cancel", description="reply obligation with excuse",
        stages=(
            Observe("request", _arrival(
                guards=(FieldEq("tcp.dst", Const(80)),),
                binds=(Bind("S", "ipv4.src"),))),
            Absent("reply", _arrival(
                guards=(FieldEq("ipv4.dst", Var("S")),)), within=2.0,
                unless=(_arrival(
                    guards=(FieldEq("ipv4.dst", Var("S")),
                            FieldNe("tcp.src", Const(80))),),)),
        ),
        key_vars=("S",),
    )


def calibration_corpus() -> Tuple[PropertySpec, ...]:
    """Fresh rule-compilable properties covering every plan shape, plus
    any Table-1 catalog property the compiler accepts."""
    from ..backends.varanus_compiler import (  # deferred: pulls in switch
        VaranusCompileError,
        check_compilable,
    )
    from ..props import build_table1  # deferred: heavy catalog imports

    corpus = [
        _chain_2(), _chain_3(), _chain_cancel(), _observe_within(),
        _absent_final(), _absent_cancel(),
    ]
    for entry in build_table1():
        try:
            check_compilable(entry.prop)
        except VaranusCompileError:
            continue
        corpus.append(entry.prop)
    return tuple(corpus)


def regenerate() -> Dict[str, Tuple[int, int, int]]:
    """Live measurements for the corpus — what :data:`CALIBRATION` pins."""
    from ..backends.varanus_compiler import plan_property

    table: Dict[str, Tuple[int, int, int]] = {}
    for prop in calibration_corpus():
        plan = plan_property(prop)
        table[prop.name] = (
            plan.instance_tables,
            plan.rules_per_instance,
            plan.flow_mods_per_instance,
        )
    return table


def codegen_corpus() -> Tuple[PropertySpec, ...]:
    """Properties the codegen calibration pins: the rule-plan shapes plus
    the full Table-1 catalog — codegen hosts every property (it has no
    compilability gate), so the catalog rows calibrate for real instead
    of waiting on a rule-compilable one."""
    from ..props import build_table1  # deferred: heavy catalog imports

    corpus = [
        _chain_2(), _chain_3(), _chain_cancel(), _observe_within(),
        _absent_final(), _absent_cancel(),
    ]
    corpus.extend(entry.prop for entry in build_table1())
    return tuple(corpus)


def regenerate_codegen() -> Dict[str, Tuple[int, int, int]]:
    """Live emission counts — what :data:`CALIBRATION_CODEGEN` pins.

    Each property is generated in isolation (one single-property monitor
    per row) so the measurements are independent of catalog composition.
    """
    from ..core.monitor import Monitor  # deferred: core is heavy

    table: Dict[str, Tuple[int, int, int]] = {}
    for prop in codegen_corpus():
        monitor = Monitor(match_strategy="codegen")
        monitor.add_property(prop)
        emission = monitor.codegen_emissions()[prop.name]
        table[prop.name] = (
            emission.event_classes,
            emission.inline_terms,
            emission.matcher_lines,
        )
    return table
