"""Lint orchestration: source text in, structured file reports out.

Per file: parse (a :class:`~repro.lang.parser.ParseError` becomes an
``L000`` diagnostic and stops that file), then per property run the AST
correctness rules; if none of them is an error, elaborate to the IR and
run the backend-feasibility and split-mode passes.  Elaboration failures
(:class:`~repro.lang.compile.CompileError`) also surface as ``L000`` with
their source position.

Suppression annotations (checked against the raw source, since the lexer
discards comments):

* ``# lint: disable=L002`` — suppresses those codes on the annotation's
  own line and the line directly below (so it can ride at the end of the
  offending clause or sit on its own line above it);
* ``# lint: disable-file=L002,L010`` — suppresses the codes everywhere in
  the file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.spec import PropertySpec
from ..lang.compile import CompileError, compile_ast
from ..lang.lexer import LexError
from ..lang.parser import ParseError, parse
from .diagnostics import Diagnostic, Severity
from .dispatch import (
    DispatchReport,
    analyze_dispatch,
    dispatch_diagnostics,
)
from .feasibility import (
    BackendVerdict,
    feasibility_diagnostics,
    survey_property,
)
from .rules import run_ast_rules
from .taint import TaintReport, analyze_taint, taint_diagnostics
from .splitmode import (
    DEFAULT_SPLIT_LAG,
    SplitLagSpec,
    SplitReport,
    analyze_split,
    resolve_split_lag,
    split_diagnostics,
)

_DISABLE_LINE = re.compile(r"#.*?\blint:\s*disable=([A-Z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#.*?\blint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class LintOptions:
    """Knobs for one lint run."""

    #: run the Table-2 feasibility pass
    feasibility: bool = True
    #: run the split-mode hazard pass
    split: bool = True
    #: run the dispatch-plan pass (watcher counts + hot-scan warnings)
    dispatch: bool = True
    #: run the taint / resource-bound pass (L017–L019)
    taint: bool = True
    #: canonical backend name to treat as the deployment target: its
    #: feasibility failures become errors (L102)
    focus_backend: Optional[str] = None
    #: split-mode state-update lag to classify against: a scalar, or a
    #: per-backend profile (resolved via the focus backend, else the
    #: worst-case lag in the profile)
    split_lag: SplitLagSpec = DEFAULT_SPLIT_LAG


@dataclass
class PropertyReport:
    """Everything the linter derived about one property."""

    name: str
    line: int = 0
    column: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    spec: Optional[PropertySpec] = None
    feasibility: Tuple[BackendVerdict, ...] = ()
    split: Optional[SplitReport] = None
    dispatch: Optional[DispatchReport] = None
    taint: Optional[TaintReport] = None


@dataclass
class FileReport:
    """One linted file: file-level diagnostics plus per-property reports."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    properties: List[PropertyReport] = field(default_factory=list)
    #: diagnostics silenced by inline annotations (kept for --json)
    suppressed: int = 0

    def all_diagnostics(self) -> List[Diagnostic]:
        out = list(self.diagnostics)
        for prop in self.properties:
            out.extend(prop.diagnostics)
        return sorted(out, key=Diagnostic.sort_key)

    def count(self, severity: Severity) -> int:
        return sum(
            1 for d in self.all_diagnostics() if d.severity is severity
        )

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)


class _Suppressions:
    """Which rule codes are silenced where, scraped from comments."""

    def __init__(self, source: str) -> None:
        self.file_wide: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DISABLE_FILE.search(text)
            if match:
                self.file_wide.update(_codes(match.group(1)))
                continue
            match = _DISABLE_LINE.search(text)
            if match:
                codes = _codes(match.group(1))
                self.by_line.setdefault(lineno, set()).update(codes)
                self.by_line.setdefault(lineno + 1, set()).update(codes)

    def covers(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code in self.file_wide:
            return True
        return diagnostic.code in self.by_line.get(diagnostic.line, set())


def _codes(raw: str) -> Set[str]:
    return {c.strip() for c in raw.split(",") if c.strip()}


def lint_source(
    source: str,
    predicates: Optional[Mapping] = None,
    path: str = "<string>",
    options: Optional[LintOptions] = None,
) -> FileReport:
    """Lint one property-language source string."""
    options = options or LintOptions()
    report = FileReport(path=path)
    suppressions = _Suppressions(source)
    try:
        asts = parse(source)
    except (ParseError, LexError) as exc:
        token = getattr(exc, "token", None)
        report.diagnostics.append(Diagnostic(
            code="L000",
            severity=Severity.ERROR,
            message=str(exc),
            line=getattr(token, "line", getattr(exc, "line", 0)) or 0,
            column=getattr(token, "column", getattr(exc, "column", 0)) or 0,
            path=path,
        ))
        return report

    for ast in asts:
        prop_report = PropertyReport(
            name=ast.name, line=ast.line, column=ast.column
        )
        report.properties.append(prop_report)
        diags = run_ast_rules(ast)
        has_error = any(d.severity is Severity.ERROR for d in diags)
        if not has_error:
            try:
                prop_report.spec = compile_ast(ast, predicates)
            except CompileError as exc:
                diags.append(Diagnostic(
                    code="L000",
                    severity=Severity.ERROR,
                    message=str(exc),
                    line=exc.line or ast.line,
                    column=exc.column or ast.column,
                    prop=ast.name,
                ))
        if prop_report.spec is not None:
            if options.feasibility:
                prop_report.feasibility = survey_property(prop_report.spec)
                diags.extend(feasibility_diagnostics(
                    ast.name, prop_report.feasibility, anchor=ast,
                    focus=options.focus_backend,
                ))
            if options.split:
                prop_report.split = analyze_split(
                    prop_report.spec,
                    lag=resolve_split_lag(
                        options.split_lag, options.focus_backend
                    ),
                )
                diags.extend(split_diagnostics(prop_report.split, anchor=ast))
            if options.dispatch:
                prop_report.dispatch = analyze_dispatch(prop_report.spec)
                diags.extend(dispatch_diagnostics(
                    prop_report.dispatch, anchor=ast
                ))
            if options.taint:
                prop_report.taint = analyze_taint(ast)
                diags.extend(taint_diagnostics(ast, prop_report.taint))
        kept = [d for d in diags if not suppressions.covers(d)]
        report.suppressed += len(diags) - len(kept)
        prop_report.diagnostics = sorted(kept, key=Diagnostic.sort_key)
    return report


def lint_file(
    path: str,
    predicates: Optional[Mapping] = None,
    options: Optional[LintOptions] = None,
) -> FileReport:
    """Lint one ``.prop`` file from disk."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            source = fp.read()
    except (OSError, UnicodeDecodeError) as exc:
        report = FileReport(path=path)
        report.diagnostics.append(Diagnostic(
            code="L000", severity=Severity.ERROR,
            message=f"cannot read {path}: {exc}", path=path,
        ))
        return report
    return lint_source(source, predicates, path=path, options=options)


def lint_paths(
    paths: Sequence[str],
    predicates: Optional[Mapping] = None,
    options: Optional[LintOptions] = None,
) -> List[FileReport]:
    """Lint many files; one report per path, in the given order."""
    return [lint_file(path, predicates, options) for path in paths]
