"""Split-mode hazard detection — the Sec. 3.3 monitor-error scenario.

The paper: "If the switch splits processing, the monitor has minimal
impact on throughput, but its state might lag behind any packets issued
in response, leading to monitor errors."  Concretely, under split
processing the rules/registers recording that stage *k−1* fired are
installed a state-update lag after the triggering event; any event that
advances stage *k* within that lag reads state still in flight and is
missed.

This pass walks the property the way the Varanus compiler lays it out —
stage k−1's firing *learns* stage k's watcher rules into the instance's
table via a (deferred, in split mode) flow-mod — and asks, per
transition, whether the property's own statement guarantees the reading
event arrives **after** the deferred write lands:

* a packet-triggered ``observe`` gives no guarantee (back-to-back packets
  race the update; ``samepacket`` makes the race *certain* — the packet's
  own egress is processed before any deferred update applies) — the
  advance can be missed outright, so the property is **inline-required**;
* an ``absent`` stage's violation path is the timer: it fires ``within``
  seconds after arming, so a deadline longer than the lag is safe (the
  property stays **split-safe**), though the *discharging* event can
  still race the timer install and cause a spurious violation (L201);
* an ``oob``-triggered stage reads state on control-plane timescales,
  orders of magnitude above any realistic update lag — safe.

``benchmarks/bench_split_vs_inline.py`` measures exactly this: its echo
property (two packet-triggered observes) misses 100% of violations in
split mode when responses beat the lag, and 0% when they trail it.  The
classification here is that experiment made static.

The pass also prices the property: pipeline depth in tables, rules and
slow-path flow-mods per instance (the Varanus rule plan where the
property is rule-compilable, the engine model otherwise), and the
register bits an instance occupies (key + carried variables at their
header-schema widths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from ..backends.varanus_compiler import VaranusCompileError, check_compilable
from ..core.compile import dispatch_plan
from ..core.refs import EventKind, EventPattern, MismatchAny
from ..core.spec import Absent, Observe, PropertySpec
from ..switch.switch import DEFAULT_SPLIT_LAG
from .calibration import (
    MeasuredCodegenCost,
    MeasuredCost,
    measured_codegen_cost,
    measured_cost,
)
from .diagnostics import Diagnostic, make
from .schema import field_bits

SPLIT_SAFE = "split-safe"
INLINE_REQUIRED = "inline-required"

#: A split-lag specification: one scalar lag for every backend, or a
#: per-backend profile keyed by canonical backend name.
SplitLagSpec = Union[float, Mapping[str, float]]


def backend_lag_profile() -> Dict[str, float]:
    """Per-backend default lags from Table 2's update-datapath column."""
    from ..backends import split_lag_profile  # deferred: backends are heavy

    return split_lag_profile()


def resolve_split_lag(
    spec: SplitLagSpec, focus_backend: Optional[str] = None
) -> float:
    """Collapse a split-lag spec to the one lag to classify against.

    A scalar passes through.  For a profile: the focused backend's entry
    when a deployment target is set and present, otherwise the *worst*
    (largest) lag in the profile — a hazard classification that must hold
    for every candidate backend has to assume the slowest update path.
    """
    if isinstance(spec, Mapping):
        if not spec:
            return DEFAULT_SPLIT_LAG
        if focus_backend is not None and focus_backend in spec:
            return float(spec[focus_backend])
        return float(max(spec.values()))
    return float(spec)


def parse_split_lag(text: str) -> SplitLagSpec:
    """Parse a ``--split-lag`` argument.

    Accepts a float (seconds), ``"table2"``/``"auto"`` for the
    per-backend defaults derived from Table 2's update-datapath column,
    or comma-separated ``NAME=SECONDS`` overrides (backend names resolve
    like ``--backend``, so unique prefixes work).
    """
    try:
        value = float(text)
    except ValueError:
        pass
    else:
        if value < 0.0:
            raise ValueError(f"--split-lag {value!r} must be non-negative")
        return value
    if text.strip().lower() in ("table2", "auto"):
        return backend_lag_profile()
    from .feasibility import resolve_backend_name

    profile: Dict[str, float] = {}
    for part in text.split(","):
        name, sep, raw = part.partition("=")
        if not sep:
            raise ValueError(
                f"bad --split-lag entry {part!r}: expected SECONDS, "
                "'table2', or NAME=SECONDS[,NAME=SECONDS...]")
        lag = float(raw)
        if lag < 0.0:
            raise ValueError(f"--split-lag {part!r}: lag must be non-negative")
        profile[resolve_backend_name(name.strip())] = lag
    return profile

_PACKET_KINDS = (
    EventKind.ARRIVAL,
    EventKind.EGRESS,
    EventKind.DROP,
    EventKind.ANY_PACKET,
)


@dataclass(frozen=True)
class Hazard:
    """One read-after-deferred-write race in a property's stage plan."""

    code: str  # L200 | L201 | L202 | L203
    stage: str  # name of the reading stage
    message: str
    #: True when the race always happens (samepacket linkage), False when
    #: it needs adversarial/fast timing.
    certain: bool = False
    #: slack the property's statement guarantees between write and read,
    #: in seconds (0.0 = none; timers guarantee their deadline).
    guaranteed_slack: float = 0.0


@dataclass(frozen=True)
class CodegenCostEstimate:
    """Predicted shape of the codegen backend's generated program.

    Derived analytically from the dispatch plan — one generated evaluator
    per concrete event class the property watches, and one inline boolean
    term per emitted refinement/guard — without running the emitter.  The
    emitter's actual counts (``repro.core.codegen.PropEmission``) are
    pinned in ``CALIBRATION_CODEGEN`` for the corpus and surfaced here as
    ``measured``; ``tests/unit/test_calibration.py`` holds the two sides
    equal.
    """

    #: concrete event classes the generated program handles for this
    #: property (one ``_eval__Cls`` body section each).
    event_classes: int
    #: inline boolean terms across every emitted matcher: refinements and
    #: ``same_packet_as`` one each, ``MismatchAny`` one per pair, every
    #: other guard one.
    inline_terms: int
    #: the checked-in emitter measurement, when this property is in
    #: ``repro.lint.calibration.CALIBRATION_CODEGEN``.
    measured: Optional[MeasuredCodegenCost] = None

    @property
    def source(self) -> str:
        """"calibrated" when an emitter measurement backs the estimate."""
        return "calibrated" if self.measured is not None else "model"


@dataclass(frozen=True)
class CostEstimate:
    """Static per-property resource estimate."""

    #: tables a packet traverses for this property (entry + unrolled
    #: instance tables), matching the backends' static depth model.
    pipeline_tables: int
    #: rules alive per instance at peak (watchers, timer/discharge pairs,
    #: cancels, the entry-table suppression rule).
    rules_per_instance: int
    #: slow-path flow-mods one instance's full lifecycle issues.
    slow_updates_per_instance: int
    #: register bits an instance occupies (key + carried variables).
    state_bits_per_instance: int
    #: "rules" when the Varanus compiler can lay the property out as
    #: dataplane rules, "engine" when it needs the reference engine.
    model: str
    #: why the rule model does not apply ("" under the rules model).
    engine_reason: str = ""
    #: switch tables one *instance* occupies (the recursive Learn unrolls
    #: one fresh table per instance regardless of stage count; 0 under
    #: the engine model, which keeps instances off the switch).
    instance_tables: int = 0
    #: the checked-in compiler measurement for this property, when it is
    #: in the calibration table (``repro.lint.calibration.CALIBRATION``).
    measured: Optional[MeasuredCost] = None
    #: the software fast path's price: what the codegen backend would
    #: generate for this property (always present — codegen hosts every
    #: property, rule-compilable or not).
    codegen: Optional[CodegenCostEstimate] = None

    @property
    def source(self) -> str:
        """"calibrated" when a compiler measurement backs the estimate."""
        return "calibrated" if self.measured is not None else "model"


@dataclass(frozen=True)
class SplitReport:
    """The split-mode verdict for one property."""

    prop: str
    classification: str  # SPLIT_SAFE | INLINE_REQUIRED
    hazards: Tuple[Hazard, ...]
    cost: CostEstimate
    lag: float


def analyze_split(
    prop: PropertySpec, lag: float = DEFAULT_SPLIT_LAG
) -> SplitReport:
    """Classify ``prop`` as split-safe or inline-required under ``lag``."""
    hazards = tuple(_find_hazards(prop, lag))
    inline = any(h.code in ("L200", "L202") for h in hazards)
    return SplitReport(
        prop=prop.name,
        classification=INLINE_REQUIRED if inline else SPLIT_SAFE,
        hazards=hazards,
        cost=estimate_cost(prop),
        lag=lag,
    )


def _find_hazards(prop: PropertySpec, lag: float) -> List[Hazard]:
    hazards: List[Hazard] = []
    for index in range(1, prop.num_stages):
        stage = prop.stages[index]
        prior = prop.stages[index - 1]
        # The state stage `index` reads (its watcher rule / instance
        # record) is written by stage `index - 1`'s firing, deferred by
        # the split lag.
        if isinstance(stage, Observe):
            if stage.pattern.kind in _PACKET_KINDS:
                certain = stage.pattern.same_packet_as is not None
                detail = (
                    "the same packet's own pipeline traversal — it is "
                    "processed before any deferred update applies"
                    if certain else
                    f"a packet arriving within the update lag of stage "
                    f"{prior.name!r}'s trigger"
                )
                hazards.append(Hazard(
                    code="L200",
                    stage=stage.name,
                    message=(
                        f"stage {stage.name!r} reads state written by stage "
                        f"{prior.name!r}'s deferred update; {detail} would "
                        "be evaluated against stale state and the advance "
                        "missed (violations go undetected)"
                    ),
                    certain=certain,
                ))
        else:  # Absent
            assert isinstance(stage, Absent)
            if stage.within <= lag:
                hazards.append(Hazard(
                    code="L202",
                    stage=stage.name,
                    message=(
                        f"absent stage {stage.name!r}'s deadline "
                        f"({stage.within:g}s) is within the split update "
                        f"lag ({lag:g}s); the timer could fire before its "
                        "own install settles"
                    ),
                    guaranteed_slack=stage.within,
                ))
            elif stage.pattern.kind in _PACKET_KINDS:
                certain = stage.pattern.same_packet_as is not None
                hazards.append(Hazard(
                    code="L201",
                    stage=stage.name,
                    message=(
                        f"absent stage {stage.name!r}'s discharging event "
                        "can arrive before the deferred timer install; the "
                        "discharge would be missed and the timer would "
                        "raise a spurious violation (the violation path "
                        f"itself is timer-driven with {stage.within:g}s "
                        "slack, so the property stays split-safe)"
                    ),
                    certain=certain,
                    guaranteed_slack=stage.within,
                ))
        for unless in getattr(stage, "unless", ()):
            if unless.kind in _PACKET_KINDS:
                hazards.append(Hazard(
                    code="L203",
                    stage=stage.name,
                    message=(
                        f"an unless cancellation on stage {stage.name!r} "
                        "can race the deferred state update; a missed "
                        "cancel leaves the obligation live and may raise a "
                        "violation the property's statement excuses"
                    ),
                ))
    return hazards


# ---------------------------------------------------------------------------
# Cost estimation
# ---------------------------------------------------------------------------
def estimate_cost(prop: PropertySpec) -> CostEstimate:
    """Static pipeline-depth / rule / register-bit price of one property."""
    try:
        check_compilable(prop)
        model, reason = "rules", ""
    except VaranusCompileError as exc:
        model, reason = "engine", str(exc)
    state_bits = _state_bits(prop)
    codegen = estimate_codegen_cost(prop)
    if model == "engine":
        # The reference engine holds one instance record and applies one
        # (split-deferrable) update per advancement; depth follows the
        # backends' one-table-per-stage static model.
        return CostEstimate(
            pipeline_tables=prop.num_stages,
            rules_per_instance=0,
            slow_updates_per_instance=prop.num_stages - 1,
            state_bits_per_instance=state_bits,
            model=model,
            engine_reason=reason,
            codegen=codegen,
        )
    # Calibrated against the compiler's emitted plans (see
    # repro.lint.calibration; the walker is plan_property).  Rules alive
    # per instance: the entry-table suppression rule, plus per later
    # stage its watcher (an Absent adds a discharge companion) and one
    # cancel rule per unless clause.  Flow-mods: stage 0's firing issues
    # the unroll + suppression learns (2); each positive stage's firing
    # issues its cleanup DeleteRules sweep and deeper Learn (5 metered
    # updates); an Absent stage arms a single timer Learn (discharge and
    # cancels ride inside it as unmetered companions).
    rules = 1
    slow_updates = 2
    for index in range(1, prop.num_stages):
        stage = prop.stages[index]
        if isinstance(stage, Absent):
            rules += 2
            slow_updates += 1
        else:
            rules += 1
            slow_updates += 5
        rules += len(getattr(stage, "unless", ()))
    return CostEstimate(
        pipeline_tables=prop.num_stages,
        rules_per_instance=rules,
        slow_updates_per_instance=slow_updates,
        state_bits_per_instance=state_bits,
        model=model,
        instance_tables=1,
        measured=measured_cost(prop.name),
        codegen=codegen,
    )


def estimate_codegen_cost(prop: PropertySpec) -> CodegenCostEstimate:
    """Predict the codegen backend's program shape from the dispatch plan.

    Deliberately independent of the emitter: this walks
    :func:`repro.core.compile.dispatch_plan` (the shared planning layer)
    and applies the counting rule analytically, while the measured side
    (``PropEmission``) is tallied off the source the emitter actually
    wrote.  The two agreeing for the whole corpus is the calibration
    invariant.
    """
    plan = dispatch_plan(prop)
    terms = sum(
        _inline_terms(watcher.pattern)
        for watchers in plan.values()
        for watcher in watchers
    )
    return CodegenCostEstimate(
        event_classes=len(plan),
        inline_terms=terms,
        measured=measured_codegen_cost(prop.name),
    )


def _inline_terms(pattern: EventPattern) -> int:
    """Boolean terms one matcher inlines: refinements (oob kind, egress
    action, negated egress action) and the packet-uid linkage one each,
    ``MismatchAny`` one per field pair, every other guard one."""
    terms = sum(
        1 for refinement in (
            pattern.oob_kind,
            pattern.egress_action,
            pattern.not_egress_action,
            pattern.same_packet_as,
        ) if refinement is not None
    )
    for guard in pattern.guards:
        terms += len(guard.pairs) if isinstance(guard, MismatchAny) else 1
    return terms


def _state_bits(prop: PropertySpec) -> int:
    """Bits of register state one instance pins down: every variable the
    property carries across stages, at its origin field's schema width."""
    origin = prop.var_origin()
    carried: Set[str] = set(prop.key_vars)
    for index, stage in enumerate(prop.stages):
        patterns = [stage.pattern] + list(getattr(stage, "unless", ()))
        for pattern in patterns:
            if index >= 1:
                carried.update(v for _, v in pattern.env_guards())
                carried.update(v for _, v in pattern.negative_env_refs())
    return sum(
        field_bits(origin[var]) for var in sorted(carried) if var in origin
    )


def split_diagnostics(report: SplitReport, anchor: object = None) -> List[Diagnostic]:
    """Hazards rendered as diagnostics (all warnings: they describe what a
    *split* deployment would get wrong, not a defect in the property)."""
    return [
        make(hazard.code, hazard.message, anchor, prop=report.prop)
        for hazard in report.hazards
    ]
