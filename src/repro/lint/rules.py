"""Correctness lints over parsed property ASTs (rules L001–L014).

Each rule is a generator over one :class:`~repro.lang.ast.PropertyAst`,
yielding :class:`~repro.lint.diagnostics.Diagnostic` objects anchored at
the offending node's source position.  The rules deliberately mirror —
and fire *before* — the hard errors the elaborator and
:class:`~repro.core.spec.PropertySpec` raise, so a malformed property
fails with positions and explanations instead of a bare exception deep in
compilation; on top of that they catch the silent-footgun cases nothing
downstream would reject (unused binds, contradictory guards, literal
overflow).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lang.ast import (
    AnyDiffers,
    BindAst,
    Comparison,
    Literal,
    NamedPredicate,
    PatternAst,
    PropertyAst,
    StageAst,
    VarRef,
)
from ..core.refs import CMP_FNS
from .dataflow import rule_cross_stage_contradiction
from .diagnostics import Diagnostic, make
from .schema import (
    FIELD_SCHEMA,
    field_type,
    kinds_compatible,
    literal_mismatch,
    literal_overflow,
)


def run_ast_rules(prop: PropertyAst) -> List[Diagnostic]:
    """All correctness findings for one property, in rule-code order."""
    out: List[Diagnostic] = []
    for rule in _AST_RULES:
        out.extend(rule(prop))
    return out


# ---------------------------------------------------------------------------
# Variable flow (L001, L002, L003)
# ---------------------------------------------------------------------------
def _var_refs(pattern: PatternAst) -> Iterator[VarRef]:
    for condition in pattern.conditions:
        if isinstance(condition, Comparison):
            if isinstance(condition.value, VarRef):
                yield condition.value
        elif isinstance(condition, AnyDiffers):
            for _, value in condition.pairs:
                if isinstance(value, VarRef):
                    yield value


def _stage_patterns(stage: StageAst) -> Iterator[PatternAst]:
    yield stage.pattern
    yield from stage.unless


def _has_named_predicates(prop: PropertyAst) -> bool:
    return any(
        isinstance(condition, NamedPredicate)
        for stage in prop.stages
        for pattern in _stage_patterns(stage)
        for condition in pattern.conditions
    )


def rule_undefined_variable(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L001 — a guard reads a variable no *earlier* stage bound.

    Matches the engine's scoping: a stage's own binds are not visible to
    its guards (binding happens when the pattern matches, guards decide
    whether it matches).
    """
    bound: Set[str] = set()
    for index, stage in enumerate(prop.stages):
        for pattern in _stage_patterns(stage):
            for ref in _var_refs(pattern):
                if ref.name not in bound:
                    hint = ""
                    if any(b.var == ref.name for b in stage.pattern.binds):
                        hint = (" (bound by this same stage — binds only "
                                "become visible to later stages)")
                    yield make(
                        "L001",
                        f"stage {stage.name!r} references ${ref.name}, which "
                        f"no earlier stage binds{hint}",
                        ref, prop=prop.name,
                    )
        bound.update(b.var for b in stage.pattern.binds)


def rule_unused_variable(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L002 — a bound variable is never consumed.

    A variable counts as used when a later guard references it or it is
    part of the instance key (explicitly, or implicitly when ``key`` is
    omitted and stage-0 binds become the key).  Properties using named
    predicates are skipped: a ``@predicate`` may read any bound variable
    through the environment, invisibly to structural analysis.
    """
    if _has_named_predicates(prop):
        return
    used: Set[str] = set()
    for stage in prop.stages:
        for pattern in _stage_patterns(stage):
            used.update(ref.name for ref in _var_refs(pattern))
    key_vars = set(prop.key_vars)
    if not key_vars and prop.stages:
        key_vars = {b.var for b in prop.stages[0].pattern.binds}
    for stage in prop.stages:
        for bind in stage.pattern.binds:
            if bind.var not in used and bind.var not in key_vars:
                yield make(
                    "L002",
                    f"${bind.var} is bound from {bind.field} but never read "
                    "by a guard or the instance key",
                    bind, prop=prop.name,
                )


def rule_shadowed_bind(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L003 — rebinding a name discards the earlier stage's value."""
    first_bound: Dict[str, str] = {}
    for stage in prop.stages:
        seen_here: Set[str] = set()
        for bind in stage.pattern.binds:
            if bind.var in seen_here:
                yield make(
                    "L003",
                    f"${bind.var} is bound twice within stage {stage.name!r}",
                    bind, prop=prop.name,
                )
            elif bind.var in first_bound:
                yield make(
                    "L003",
                    f"stage {stage.name!r} rebinds ${bind.var} (first bound "
                    f"in stage {first_bound[bind.var]!r}); the earlier value "
                    "is shadowed for all later stages",
                    bind, prop=prop.name,
                )
            seen_here.add(bind.var)
            first_bound.setdefault(bind.var, stage.name)


# ---------------------------------------------------------------------------
# Guard consistency (L004, L005, L006)
# ---------------------------------------------------------------------------
def _value_token(value) -> Tuple[str, object]:
    if isinstance(value, VarRef):
        return ("var", value.name)
    return ("lit", value.value)


def _comparison_key(condition: Comparison) -> Tuple[str, str, Tuple[str, object]]:
    return (condition.field, condition.op, _value_token(condition.value))


def _duplicate_guards(pattern: PatternAst) -> Iterator[Comparison]:
    seen: Set[Tuple] = set()
    for condition in pattern.conditions:
        if not isinstance(condition, Comparison):
            continue
        key = _comparison_key(condition)
        if key in seen:
            yield condition
        seen.add(key)


def _ordered_pair_empty(a: Comparison, b: Comparison) -> bool:
    """True when two literal ordered guards on one field exclude each other."""
    lo, hi = (a, b) if a.op in (">", ">=") else (b, a)
    if lo.op not in (">", ">=") or hi.op not in ("<", "<="):
        return False  # same-direction bounds always intersect
    try:
        if lo.value.value > hi.value.value:
            return True
        if lo.value.value == hi.value.value:
            return lo.op == ">" or hi.op == "<"
    except TypeError:
        pass  # unorderable bounds: nothing provable
    return False


def _contradictions(pattern: PatternAst) -> Iterator[Tuple[Comparison, str]]:
    """(node, explanation) for every internally unsatisfiable guard set."""
    eq_by_field: Dict[str, Comparison] = {}
    ne_by_field: Dict[str, List[Comparison]] = {}
    ord_by_field: Dict[str, List[Comparison]] = {}
    for condition in pattern.conditions:
        if not isinstance(condition, Comparison):
            continue
        if condition.op == "==":
            prior = eq_by_field.get(condition.field)
            if prior is not None and _value_token(prior.value) != _value_token(
                    condition.value):
                yield (condition,
                       f"{condition.field} cannot equal both "
                       f"{_render_value(prior.value)} and "
                       f"{_render_value(condition.value)}")
            eq_by_field.setdefault(condition.field, condition)
        elif condition.op == "!=":
            ne_by_field.setdefault(condition.field, []).append(condition)
        elif isinstance(condition.value, Literal):
            # ordered guards with Var bounds carry no static interval
            ord_by_field.setdefault(condition.field, []).append(condition)
    for field_name, eq in eq_by_field.items():
        for ne in ne_by_field.get(field_name, []):
            if _value_token(eq.value) == _value_token(ne.value):
                yield (ne,
                       f"{field_name} == {_render_value(eq.value)} and "
                       f"{field_name} != {_render_value(ne.value)} can never "
                       "both hold")
        if not isinstance(eq.value, Literal):
            continue
        for cmp_cond in ord_by_field.get(field_name, []):
            try:
                satisfied = CMP_FNS[cmp_cond.op](
                    eq.value.value, cmp_cond.value.value)
            except TypeError:
                continue
            if not satisfied:
                yield (cmp_cond,
                       f"{field_name} == {_render_value(eq.value)} and "
                       f"{field_name} {cmp_cond.op} "
                       f"{_render_value(cmp_cond.value)} can never both hold")
    for field_name, conds in ord_by_field.items():
        for i, first in enumerate(conds):
            for second in conds[i + 1:]:
                if _ordered_pair_empty(first, second):
                    yield (second,
                           f"{field_name} {first.op} "
                           f"{_render_value(first.value)} and "
                           f"{field_name} {second.op} "
                           f"{_render_value(second.value)} can never both "
                           "hold")


def _render_value(value) -> str:
    if isinstance(value, VarRef):
        return f"${value.name}"
    return repr(value.value)


def rule_duplicate_guard(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L004 — a guard repeated verbatim is dead weight (or a typo)."""
    for stage in prop.stages:
        for condition in _duplicate_guards(stage.pattern):
            yield make(
                "L004",
                f"stage {stage.name!r} repeats the guard "
                f"{condition.field} {condition.op} "
                f"{_render_value(condition.value)}",
                condition, prop=prop.name,
            )


def rule_contradictory_guards(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L005 — a stage pattern that can never match (main patterns only;
    unsatisfiable unless patterns are L006's unreachable case)."""
    for stage in prop.stages:
        for condition, why in _contradictions(stage.pattern):
            yield make(
                "L005",
                f"stage {stage.name!r} can never match: {why}",
                condition, prop=prop.name,
            )


def rule_unreachable_unless(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L006 — an unless pattern that can never cancel anything."""
    for stage in prop.stages:
        seen: List[PatternAst] = []
        for unless in stage.unless:
            for condition, why in _contradictions(unless):
                yield make(
                    "L006",
                    f"unless pattern on stage {stage.name!r} is unreachable: "
                    f"{why}",
                    condition, prop=prop.name,
                )
            if any(unless == prior for prior in seen):
                yield make(
                    "L006",
                    f"unless pattern on stage {stage.name!r} duplicates an "
                    "earlier unless on the same stage",
                    unless, prop=prop.name,
                )
            seen.append(unless)


# ---------------------------------------------------------------------------
# Deadlines and stage structure (L007, L012, L013, L014)
# ---------------------------------------------------------------------------
def rule_bad_within(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L007 — missing / non-positive / misplaced ``within`` deadlines."""
    for index, stage in enumerate(prop.stages):
        if stage.negative and stage.within is None:
            yield make(
                "L007",
                f"absent stage {stage.name!r} needs a `within` deadline "
                "(a negative observation is only checkable over a finite "
                "window)",
                stage, prop=prop.name,
            )
        if stage.within is not None and stage.within <= 0:
            yield make(
                "L007",
                f"stage {stage.name!r} has a non-positive deadline "
                f"`within {stage.within:g}`",
                stage, prop=prop.name,
            )
        if index == 0 and not stage.negative and stage.within is not None:
            yield make(
                "L007",
                f"stage 0 ({stage.name!r}) cannot carry `within`: there is "
                "no prior stage to time from",
                stage, prop=prop.name,
            )


def rule_bad_first_stage(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L012 — the first stage must be a positive observation."""
    if prop.stages and prop.stages[0].negative:
        yield make(
            "L012",
            f"first stage {prop.stages[0].name!r} is `absent`; something "
            "positive has to create the instance",
            prop.stages[0], prop=prop.name,
        )


def rule_duplicate_stage(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L013 — stage names must be unique (watchers are named by them)."""
    seen: Dict[str, StageAst] = {}
    for stage in prop.stages:
        if stage.name in seen:
            yield make(
                "L013",
                f"stage name {stage.name!r} is already used",
                stage, prop=prop.name,
            )
        seen.setdefault(stage.name, stage)


def rule_unknown_samepacket(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L014 — ``samepacket`` must name a *preceding* stage."""
    preceding: Set[str] = set()
    for stage in prop.stages:
        for pattern in _stage_patterns(stage):
            target = pattern.same_packet_as
            if target is not None and target not in preceding:
                where = ("itself" if target == stage.name
                         else f"{target!r}, which does not precede it")
                yield make(
                    "L014",
                    f"stage {stage.name!r}: samepacket references {where}",
                    pattern, prop=prop.name,
                )
        preceding.add(stage.name)


def rule_key_not_bound(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L011 — every declared key variable must come from stage 0."""
    if not prop.stages or not prop.key_vars:
        return
    bound0 = {b.var for b in prop.stages[0].pattern.binds}
    for var in prop.key_vars:
        if var not in bound0:
            yield make(
                "L011",
                f"key variable {var!r} is not bound by stage 0 "
                f"({prop.stages[0].name!r}); instances could never be keyed "
                "on it",
                prop, prop=prop.name,
            )


# ---------------------------------------------------------------------------
# Types and widths (L008, L009, L010)
# ---------------------------------------------------------------------------
def _comparison_pairs(pattern: PatternAst) -> Iterator[Tuple[str, object, object]]:
    """(field, value-node, anchor-node) for every field/value comparison."""
    for condition in pattern.conditions:
        if isinstance(condition, Comparison):
            yield condition.field, condition.value, condition
        elif isinstance(condition, AnyDiffers):
            for field_name, value in condition.pairs:
                yield field_name, value, condition


def rule_type_mismatch(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L008 — literal kinds and variable origins must fit their fields."""
    origin: Dict[str, str] = {}
    for stage in prop.stages:
        for pattern in _stage_patterns(stage):
            for field_name, value, anchor in _comparison_pairs(pattern):
                if isinstance(value, Literal):
                    why = literal_mismatch(field_name, value.value)
                    if why:
                        yield make("L008", why, value, prop=prop.name)
                elif isinstance(value, VarRef):
                    bound_from = origin.get(value.name)
                    if bound_from is None:
                        continue
                    ftype = field_type(field_name)
                    btype = field_type(bound_from)
                    if ftype and btype and not kinds_compatible(
                            ftype.kind, btype.kind):
                        yield make(
                            "L008",
                            f"${value.name} was bound from {bound_from} "
                            f"({btype.kind}) but is matched against "
                            f"{field_name} ({ftype.kind}); the two kinds "
                            "never compare equal",
                            value, prop=prop.name,
                        )
        for bind in stage.pattern.binds:
            origin.setdefault(bind.var, bind.field)


def rule_literal_overflow(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L009 — integer literals must fit the field's register width."""
    for stage in prop.stages:
        for pattern in _stage_patterns(stage):
            for field_name, value, _anchor in _comparison_pairs(pattern):
                if isinstance(value, Literal):
                    why = literal_overflow(field_name, value.value)
                    if why:
                        yield make("L009", why, value, prop=prop.name)


def rule_unknown_field(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L010 — fields outside the header schema are typos until proven
    otherwise (the monitor would silently never match them)."""
    for stage in prop.stages:
        for pattern in _stage_patterns(stage):
            for field_name, _value, anchor in _comparison_pairs(pattern):
                if field_name not in FIELD_SCHEMA:
                    yield make(
                        "L010",
                        f"unknown field {field_name!r} (not produced by any "
                        "parsed header or event metadata)",
                        anchor, prop=prop.name,
                    )
            for bind in pattern.binds:
                if bind.field not in FIELD_SCHEMA:
                    yield make(
                        "L010",
                        f"bind {bind.var} = {bind.field}: unknown field "
                        f"{bind.field!r}",
                        bind, prop=prop.name,
                    )


_AST_RULES = (
    rule_undefined_variable,
    rule_unused_variable,
    rule_shadowed_bind,
    rule_duplicate_guard,
    rule_contradictory_guards,
    rule_unreachable_unless,
    rule_bad_within,
    rule_type_mismatch,
    rule_literal_overflow,
    rule_unknown_field,
    rule_key_not_bound,
    rule_bad_first_stage,
    rule_duplicate_stage,
    rule_unknown_samepacket,
    rule_cross_stage_contradiction,
)
