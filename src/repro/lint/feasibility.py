"""Backend feasibility pass — a static ``repro survey`` for one property.

Checks a compiled property's derived
:class:`~repro.core.features.FeatureRequirements` against every Table-2
backend capability descriptor and reports, per backend, exactly which
missing features block placement.  The verdicts come straight from
:meth:`repro.backends.base.Backend.blockers`, the same code path
``Backend.compile``/``check`` reject through, so the linter can never
disagree with the compile-time survey.

Rule codes: ``L101`` (info) per blocked backend, ``L100`` (error) when no
surveyed backend can host, ``L102`` (error) when a ``--backend`` focus
target cannot host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..backends import Backend, all_backends
from ..core.spec import PropertySpec
from .diagnostics import Diagnostic, make


@dataclass(frozen=True)
class Blocker:
    """One missing feature keeping a backend from hosting a property."""

    feature: str
    reason: str
    #: True for Table 2's X ("the architecture precludes implementation"),
    #: False for its blanks (target-dependent / unclear support).
    precluded: bool


@dataclass(frozen=True)
class BackendVerdict:
    """Can one backend host one property, and if not, why not."""

    backend: str
    hosted: bool
    blockers: Tuple[Blocker, ...] = ()


def survey_property(
    prop: PropertySpec,
    backends: Optional[Sequence[Backend]] = None,
) -> Tuple[BackendVerdict, ...]:
    """Feasibility verdicts for ``prop`` across the Table-2 backends."""
    verdicts = []
    for backend in (backends if backends is not None else all_backends()):
        gaps = backend.blockers(prop)
        verdicts.append(BackendVerdict(
            backend=backend.caps.name,
            hosted=not gaps,
            blockers=tuple(
                Blocker(g.feature, g.reason, g.precluded) for g in gaps
            ),
        ))
    return tuple(verdicts)


def resolve_backend_name(name: str) -> str:
    """Map a user-supplied backend name to its canonical Table-2 name."""
    names = [b.caps.name for b in all_backends()]
    for canonical in names:
        if canonical.lower() == name.lower():
            return canonical
    matches = [c for c in names if c.lower().startswith(name.lower())]
    if len(matches) == 1:
        return matches[0]
    raise ValueError(
        f"unknown backend {name!r}; choose from: {', '.join(names)}"
    )


def feasibility_diagnostics(
    prop_name: str,
    verdicts: Sequence[BackendVerdict],
    anchor: object = None,
    focus: Optional[str] = None,
) -> List[Diagnostic]:
    """Diagnostics for one property's verdicts.

    ``focus`` names the deployment target (``--backend``): its failure is
    an error (L102); other backends' failures stay informational (L101).
    """
    out: List[Diagnostic] = []
    for verdict in verdicts:
        if verdict.hosted:
            continue
        features = ", ".join(b.feature for b in verdict.blockers)
        code = "L102" if verdict.backend == focus else "L101"
        out.append(make(
            code,
            f"{verdict.backend} cannot host {prop_name}: missing {features} "
            f"({verdict.blockers[0].reason})",
            anchor, prop=prop_name,
        ))
    if verdicts and not any(v.hosted for v in verdicts):
        out.append(make(
            "L100",
            f"no surveyed backend can host {prop_name}; the closest is "
            f"{_closest(verdicts)}",
            anchor, prop=prop_name,
        ))
    return out


def _closest(verdicts: Sequence[BackendVerdict]) -> str:
    best = min(verdicts, key=lambda v: len(v.blockers))
    features = ", ".join(b.feature for b in best.blockers)
    return f"{best.backend} (still missing {features})"
