"""Render lint reports as human-readable text or machine-readable JSON.

Text format, one diagnostic per line::

    path:line:col: severity CODE slug: message

followed (per property) by a feasibility one-liner, the split-mode
verdict, and the static cost estimate, then a footer totalling errors and
warnings across all files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .diagnostics import Diagnostic, RULES
from .engine import FileReport, PropertyReport
from .splitmode import INLINE_REQUIRED


def render_text(reports: Sequence[FileReport], verbose: bool = True) -> str:
    """The default terminal rendering of one lint run."""
    lines: List[str] = []
    for report in reports:
        for diag in report.all_diagnostics():
            lines.append(_diag_line(report.path, diag))
            for rel in diag.related:
                where = f"{diag.path or report.path}:{rel.line}:{rel.column}"
                lines.append(f"{where}: note: {rel.message}")
        if verbose:
            for prop in report.properties:
                lines.extend(_prop_summary(prop))
    errors = sum(r.errors for r in reports)
    warnings = sum(r.warnings for r in reports)
    suppressed = sum(r.suppressed for r in reports)
    footer = f"{errors} error(s), {warnings} warning(s)"
    if suppressed:
        footer += f", {suppressed} suppressed"
    footer += f" across {len(reports)} file(s)"
    lines.append(footer)
    return "\n".join(lines)


def _diag_line(path: str, diag: Diagnostic) -> str:
    where = f"{diag.path or path}:{diag.line}:{diag.column}"
    slug = RULES[diag.code].slug
    return (
        f"{where}: {diag.severity.value} {diag.code} {slug}: {diag.message}"
    )


def _prop_summary(prop: PropertyReport) -> List[str]:
    if prop.spec is None:
        return [f"  {prop.name}: not elaborated (errors above)"]
    lines: List[str] = []
    if prop.feasibility:
        hosts = [v.backend for v in prop.feasibility if v.hosted]
        blocked = len(prop.feasibility) - len(hosts)
        hosted_by = ", ".join(hosts) if hosts else "none"
        lines.append(
            f"  {prop.name}: feasible on {len(hosts)}/{len(prop.feasibility)}"
            f" backend(s) [{hosted_by}]"
            + (f"; {blocked} blocked" if blocked else "")
        )
    if prop.split is not None:
        split = prop.split
        verdict = split.classification
        if verdict == INLINE_REQUIRED:
            verdict += " (split processing would miss violations)"
        lines.append(
            f"  {prop.name}: {verdict} at lag {split.lag:g}s; "
            f"{len(split.hazards)} hazard(s)"
        )
        cost = split.cost
        detail = (
            f"{cost.rules_per_instance} rule(s)/instance"
            if cost.model == "rules"
            else "reference engine"
        )
        lines.append(
            f"  {prop.name}: cost ~{cost.pipeline_tables} pipeline table(s), "
            f"{detail}, {cost.slow_updates_per_instance} slow update(s), "
            f"{cost.state_bits_per_instance} state bit(s) per instance"
        )
        if cost.measured is not None:
            m = cost.measured
            agree = (
                m.instance_tables == cost.instance_tables
                and m.rules_per_instance == cost.rules_per_instance
                and m.flow_mods_per_instance == cost.slow_updates_per_instance
            )
            lines.append(
                f"  {prop.name}: compiler-measured {m.instance_tables} "
                f"instance table(s), {m.rules_per_instance} rule(s), "
                f"{m.flow_mods_per_instance} flow-mod(s) per instance "
                f"({'matches estimate' if agree else 'DIVERGES from estimate'})"
            )
        if cost.codegen is not None:
            cg = cost.codegen
            line = (
                f"  {prop.name}: codegen ~{cg.event_classes} event "
                f"class(es), {cg.inline_terms} inline term(s)"
            )
            if cg.measured is not None:
                cm = cg.measured
                agree = (
                    cm.event_classes == cg.event_classes
                    and cm.inline_terms == cg.inline_terms
                )
                line += (
                    f"; emitter-measured {cm.event_classes}/"
                    f"{cm.inline_terms} over {cm.matcher_lines} "
                    f"matcher line(s) "
                    f"({'matches estimate' if agree else 'DIVERGES from estimate'})"
                )
            lines.append(line)
    if prop.dispatch is not None:
        watchers = ", ".join(
            f"{kind}={count}" for kind, count in prop.dispatch.watchers
        ) or "none"
        line = f"  {prop.name}: dispatch watchers {watchers}"
        scans = len(prop.dispatch.hot_scans)
        if scans:
            line += f"; {scans} hot scan(s)"
        lines.append(line)
    if prop.taint is not None:
        taint = prop.taint
        bound = ("≥2^63" if taint.capped
                 else f"≤{taint.instance_bound:,}")
        line = (
            f"  {prop.name}: key taint {taint.key_label}, "
            f"{bound} instance(s)"
        )
        if taint.suggested_max_instances is not None:
            line += (
                f"; suggest max_instances={taint.suggested_max_instances}"
            )
        lines.append(line)
    return lines


def render_json(reports: Sequence[FileReport]) -> str:
    """A stable JSON document for tooling (``repro lint --json``)."""
    payload = {
        "files": [_file_json(r) for r in reports],
        "summary": {
            "files": len(reports),
            "errors": sum(r.errors for r in reports),
            "warnings": sum(r.warnings for r in reports),
            "suppressed": sum(r.suppressed for r in reports),
            "dispatch": _dispatch_totals(reports),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _dispatch_totals(reports: Sequence[FileReport]) -> Dict[str, int]:
    """Aggregate dispatch-plan size: watchers per event kind, summed over
    every linted property — what each event class would wake if the whole
    lint run were loaded into one monitor."""
    totals: Dict[str, int] = {}
    for report in reports:
        for prop in report.properties:
            if prop.dispatch is None:
                continue
            for kind, count in prop.dispatch.watchers:
                totals[kind] = totals.get(kind, 0) + count
    return totals


def _file_json(report: FileReport) -> Dict[str, Any]:
    return {
        "path": report.path,
        "errors": report.errors,
        "warnings": report.warnings,
        "suppressed": report.suppressed,
        "diagnostics": [_diag_json(d, report.path) for d in report.diagnostics],
        "properties": [_prop_json(p, report.path) for p in report.properties],
    }


def _diag_json(diag: Diagnostic, path: str) -> Dict[str, Any]:
    return {
        "code": diag.code,
        "slug": RULES[diag.code].slug,
        "severity": diag.severity.value,
        "message": diag.message,
        "path": diag.path or path,
        "line": diag.line,
        "column": diag.column,
        "property": diag.prop,
        "related": [
            {"message": rel.message, "line": rel.line, "column": rel.column}
            for rel in diag.related
        ],
    }


def _prop_json(prop: PropertyReport, path: str) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": prop.name,
        "line": prop.line,
        "column": prop.column,
        "elaborated": prop.spec is not None,
        "diagnostics": [_diag_json(d, path) for d in prop.diagnostics],
    }
    if prop.feasibility:
        out["feasibility"] = [
            {
                "backend": v.backend,
                "hosted": v.hosted,
                "blockers": [
                    {
                        "feature": b.feature,
                        "reason": b.reason,
                        "precluded": b.precluded,
                    }
                    for b in v.blockers
                ],
            }
            for v in prop.feasibility
        ]
    if prop.split is not None:
        split = prop.split
        out["split"] = {
            "classification": split.classification,
            "lag": split.lag,
            "hazards": [
                {
                    "code": h.code,
                    "stage": h.stage,
                    "message": h.message,
                    "certain": h.certain,
                    "guaranteed_slack": h.guaranteed_slack,
                }
                for h in split.hazards
            ],
            "cost": {
                "pipeline_tables": split.cost.pipeline_tables,
                "instance_tables": split.cost.instance_tables,
                "rules_per_instance": split.cost.rules_per_instance,
                "slow_updates_per_instance":
                    split.cost.slow_updates_per_instance,
                "state_bits_per_instance":
                    split.cost.state_bits_per_instance,
                "model": split.cost.model,
                "engine_reason": split.cost.engine_reason,
                "source": split.cost.source,
                "measured": None if split.cost.measured is None else {
                    "instance_tables": split.cost.measured.instance_tables,
                    "rules_per_instance":
                        split.cost.measured.rules_per_instance,
                    "flow_mods_per_instance":
                        split.cost.measured.flow_mods_per_instance,
                },
                "codegen": None if split.cost.codegen is None else {
                    "event_classes": split.cost.codegen.event_classes,
                    "inline_terms": split.cost.codegen.inline_terms,
                    "source": split.cost.codegen.source,
                    "measured": None if split.cost.codegen.measured is None
                    else {
                        "event_classes":
                            split.cost.codegen.measured.event_classes,
                        "inline_terms":
                            split.cost.codegen.measured.inline_terms,
                        "matcher_lines":
                            split.cost.codegen.measured.matcher_lines,
                    },
                },
            },
        }
    if prop.dispatch is not None:
        out["dispatch"] = {
            "watchers": dict(prop.dispatch.watchers),
            "scans": [
                {"kind": kind, "stage": stage, "role": role}
                for kind, stage, role in prop.dispatch.scans
            ],
        }
    if prop.taint is not None:
        taint = prop.taint
        out["taint"] = {
            "key_vars": list(taint.key_vars),
            "key_label": taint.key_label,
            "instance_bound": taint.instance_bound,
            "capped": taint.capped,
            "attacker_matchable": list(taint.attacker_matchable),
            "suggested_max_instances": taint.suggested_max_instances,
            "labels": {
                name: {
                    "label": t.label,
                    "field": t.field,
                    "stage": t.stage,
                    "reason": t.reason,
                }
                for name, t in sorted(taint.labels.items())
            },
        }
    return out
