"""Static analysis for property specifications (``repro lint``).

Three pass families over parsed ASTs and compiled
:class:`~repro.core.spec.PropertySpec` IR:

* correctness lints (L0xx) — undefined/unused variables, shadowed binds,
  duplicate or contradictory guards, unreachable ``unless`` clauses,
  bad ``within`` deadlines, type/width mismatches against the header
  schema (:mod:`repro.lint.rules`);
* backend feasibility (L1xx) — the property's derived feature
  requirements checked against every Table-2 capability column, via the
  same code path ``Backend.compile`` rejects through
  (:mod:`repro.lint.feasibility`);
* split-mode hazards (L2xx) — read-after-deferred-write races in the
  stage/register plan, the Sec. 3.3 monitor-error scenario, plus static
  pipeline/rule/register cost estimates (:mod:`repro.lint.splitmode`).
"""

from .calibration import (
    CALIBRATION,
    CALIBRATION_CODEGEN,
    MeasuredCodegenCost,
    MeasuredCost,
    measured_codegen_cost,
    measured_cost,
)
from .dataflow import rule_cross_stage_contradiction, stage_environments
from .diagnostics import Diagnostic, Related, Rule, RULES, Severity
from .dispatch import (
    DispatchReport,
    analyze_dispatch,
    dispatch_diagnostics,
)
from .engine import (
    FileReport,
    LintOptions,
    PropertyReport,
    lint_file,
    lint_paths,
    lint_source,
)
from .fixes import (
    FIXABLE,
    AppliedFix,
    FixResult,
    SkippedProperty,
    fix_ast,
    fix_source,
)
from .feasibility import (
    BackendVerdict,
    Blocker,
    feasibility_diagnostics,
    resolve_backend_name,
    survey_property,
)
from .render import render_json, render_text
from .rules import run_ast_rules
from .taint import (
    CONSTANT,
    LABEL_ORDER,
    MAX_BOUND,
    TaintReport,
    VarTaint,
    analyze_taint,
    label_rank,
    taint_diagnostics,
)
from .splitmode import (
    DEFAULT_SPLIT_LAG,
    INLINE_REQUIRED,
    SPLIT_SAFE,
    CodegenCostEstimate,
    CostEstimate,
    Hazard,
    SplitLagSpec,
    SplitReport,
    analyze_split,
    backend_lag_profile,
    estimate_codegen_cost,
    estimate_cost,
    parse_split_lag,
    resolve_split_lag,
    split_diagnostics,
)

__all__ = [
    "CALIBRATION",
    "CALIBRATION_CODEGEN",
    "MeasuredCodegenCost",
    "MeasuredCost",
    "measured_codegen_cost",
    "measured_cost",
    "rule_cross_stage_contradiction",
    "stage_environments",
    "Diagnostic",
    "Related",
    "Rule",
    "RULES",
    "Severity",
    "DispatchReport",
    "analyze_dispatch",
    "dispatch_diagnostics",
    "FileReport",
    "LintOptions",
    "PropertyReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "FIXABLE",
    "AppliedFix",
    "FixResult",
    "SkippedProperty",
    "fix_ast",
    "fix_source",
    "BackendVerdict",
    "Blocker",
    "feasibility_diagnostics",
    "resolve_backend_name",
    "survey_property",
    "render_json",
    "render_text",
    "run_ast_rules",
    "CONSTANT",
    "LABEL_ORDER",
    "MAX_BOUND",
    "TaintReport",
    "VarTaint",
    "analyze_taint",
    "label_rank",
    "taint_diagnostics",
    "DEFAULT_SPLIT_LAG",
    "INLINE_REQUIRED",
    "SPLIT_SAFE",
    "CodegenCostEstimate",
    "CostEstimate",
    "estimate_codegen_cost",
    "Hazard",
    "SplitLagSpec",
    "SplitReport",
    "analyze_split",
    "backend_lag_profile",
    "estimate_cost",
    "parse_split_lag",
    "resolve_split_lag",
    "split_diagnostics",
]
