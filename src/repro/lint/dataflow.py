"""Cross-stage dataflow analysis (rule L016).

L005 reasons about one pattern at a time, so it cannot see that a guard
is unsatisfiable because of what *earlier* stages guarantee.  The classic
miss::

    observe knock : arrival
        where tcp.dst == 7001
        bind P = tcp.dst            # P is pinned: P == 7001, always
    observe open : arrival
        where tcp.dst == $P and tcp.dst != 7001   # can never both hold

Within the ``open`` pattern the two guards compare different *tokens*
(``$P`` vs ``7001``), so L005 stays quiet — but stage ``knock`` only
fires when ``tcp.dst == 7001``, and binding ``P`` off the same field in
the same pattern pins ``P`` to that constant for every instance.

This pass runs an abstract interpretation over the stage sequence,
propagating two kinds of facts into each later stage's guard
environment:

* **pins** — ``bind V = f`` in a pattern that also guards ``f == lit``
  makes ``V == lit`` in every reachable instance;
* **aliases** — ``bind V = f`` alongside ``f == $X`` makes ``V == X``
  (and transitively inherits X's pin, if any);
* **ranges** — ``bind V = f`` alongside ordered guards (``f >= 7000 and
  f < 8000``) confines ``V`` to an interval, so a later ``$V``-guarded
  field contradicting the interval is just as dead as a pinned one.

Rebinding a variable (L003's shadowing) conservatively invalidates its
facts; aliases pointing at the rebound variable are materialised into
pins first when possible, severed otherwise — the analysis only ever
*loses* facts at merge points, so every finding it reports is a genuine
contradiction, never a may-alias guess.

Each finding carries :class:`~repro.lint.diagnostics.Related` positions
pointing at **both** conflicting sites: the other guard in the pattern
and the earlier-stage bind/guard pair the pinned value traces back to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.refs import CMP_FNS
from ..lang.ast import (
    ORDERED_OPS,
    Comparison,
    PatternAst,
    PropertyAst,
    StageAst,
    VarRef,
)
from .diagnostics import Diagnostic, Related, make, related_to


# ---------------------------------------------------------------------------
# Interval arithmetic (shared with the taint pass's resource bounds)
# ---------------------------------------------------------------------------
#: (lo, lo_strict, hi, hi_strict); None bounds are unbounded.
Interval = Tuple[object, bool, object, bool]

UNBOUNDED: Interval = (None, False, None, False)


def interval_of(op: str, bound: object) -> Interval:
    """The interval a single ordered guard ``field <op> bound`` admits."""
    if op == ">":
        return (bound, True, None, False)
    if op == ">=":
        return (bound, False, None, False)
    if op == "<":
        return (None, False, bound, True)
    if op == "<=":
        return (None, False, bound, False)
    raise ValueError(f"not an ordered operator: {op!r}")


def intersect(a: Interval, b: Interval) -> Optional[Interval]:
    """Meet of two intervals; ``None`` when empty.

    Raises :class:`TypeError` when the bounds do not order against each
    other — callers treat that as "nothing provable" and skip.
    """
    lo, lo_strict = a[0], a[1]
    if b[0] is not None and (
        lo is None or b[0] > lo or (b[0] == lo and b[1])
    ):
        lo, lo_strict = b[0], b[1]
    hi, hi_strict = a[2], a[3]
    if b[2] is not None and (
        hi is None or b[2] < hi or (b[2] == hi and b[3])
    ):
        hi, hi_strict = b[2], b[3]
    if lo is not None and hi is not None:
        if lo > hi or (lo == hi and (lo_strict or hi_strict)):
            return None
    return (lo, lo_strict, hi, hi_strict)


def render_interval(interval: Interval) -> str:
    lo, lo_strict, hi, hi_strict = interval
    left = "(" if lo_strict or lo is None else "["
    right = ")" if hi_strict or hi is None else "]"
    lo_text = "-inf" if lo is None else str(lo)
    hi_text = "+inf" if hi is None else str(hi)
    return f"{left}{lo_text}, {hi_text}{right}"


@dataclass(frozen=True)
class Pin:
    """``var == value`` holds in every instance reaching later stages."""

    var: str
    value: object  # the pinning literal's python value
    rendered: str  # how to print it in messages
    stage: str  # stage whose pattern established the fact
    bind: object  # the BindAst node
    guard: object  # the Comparison node that pinned the bound field


@dataclass(frozen=True)
class Alias:
    """``var == other`` holds (bound off a field guarded equal to $other)."""

    var: str
    other: str
    stage: str
    bind: object
    guard: object


@dataclass(frozen=True)
class Range:
    """``var`` lies inside ``interval`` in every reachable instance."""

    var: str
    interval: Interval
    stage: str
    bind: object
    guards: Tuple[object, ...]  # the ordered Comparison nodes that bound it


class StageEnv:
    """Facts earlier stages guarantee about variable values."""

    def __init__(self) -> None:
        self.pins: Dict[str, Pin] = {}
        self.aliases: Dict[str, Alias] = {}
        self.ranges: Dict[str, Range] = {}

    def range_of(self, name: str) -> Optional[Range]:
        """The interval fact for a variable, following aliases."""
        norm, _ = self.resolve(VarRef(name))
        if norm[0] != "var":
            return None
        return self.ranges.get(norm[1])

    # -- resolution ---------------------------------------------------------
    def resolve(self, value: object) -> Tuple[Tuple[str, object], List[object]]:
        """Normalise a guard value to ``("lit", v)`` or ``("var", root)``.

        Returns the normalised token and the trail of facts (Pins/Aliases,
        in derivation order) the normalisation walked through — the trail
        is what the diagnostic's related positions are built from.
        """
        if not isinstance(value, VarRef):
            return ("lit", value.value), []
        name = value.name
        trail: List[object] = []
        seen = set()
        while name not in seen:
            seen.add(name)
            pin = self.pins.get(name)
            if pin is not None:
                trail.append(pin)
                return ("lit", pin.value), trail
            alias = self.aliases.get(name)
            if alias is None:
                break
            trail.append(alias)
            name = alias.other
        return ("var", name), trail

    # -- fact propagation ---------------------------------------------------
    def absorb(self, stage: StageAst) -> None:
        """Fold one stage's main pattern into the environment."""
        pattern = stage.pattern
        field_lit: Dict[str, Comparison] = {}
        field_var: Dict[str, Comparison] = {}
        field_ord: Dict[str, List[Tuple[Comparison, object]]] = {}
        for condition in pattern.conditions:
            if not isinstance(condition, Comparison):
                continue
            if condition.op == "==":
                if isinstance(condition.value, VarRef):
                    field_var.setdefault(condition.field, condition)
                else:
                    field_lit.setdefault(condition.field, condition)
            elif condition.op in ORDERED_OPS:
                # a Var bound still yields an interval when the Var is
                # itself pinned to a literal by an earlier stage
                norm, _ = self.resolve(condition.value)
                if norm[0] == "lit":
                    field_ord.setdefault(condition.field, []).append(
                        (condition, norm[1]))
        for bind in pattern.binds:
            self._invalidate(bind.var)
            pinning = field_lit.get(bind.field)
            aliasing = field_var.get(bind.field)
            if pinning is not None:
                self.pins[bind.var] = Pin(
                    var=bind.var, value=pinning.value.value,
                    rendered=repr(pinning.value.value), stage=stage.name,
                    bind=bind, guard=pinning)
            elif aliasing is not None:
                other = aliasing.value.name
                if other != bind.var:
                    self.aliases[bind.var] = Alias(
                        var=bind.var, other=other, stage=stage.name,
                        bind=bind, guard=aliasing)
            elif bind.field in field_ord:
                interval: Optional[Interval] = UNBOUNDED
                guards: List[object] = []
                for cond, bound in field_ord[bind.field]:
                    try:
                        met = intersect(interval, interval_of(cond.op, bound))
                    except TypeError:
                        continue  # unorderable bound: no fact
                    if met is None:
                        # statically-empty pattern — L005/L016 report it;
                        # an unreachable stage pins nothing here
                        guards = []
                        break
                    interval = met
                    guards.append(cond)
                if guards:
                    self.ranges[bind.var] = Range(
                        var=bind.var, interval=interval, stage=stage.name,
                        bind=bind, guards=tuple(guards))

    def _invalidate(self, var: str) -> None:
        """A rebind of ``var``: earlier facts about it no longer hold.

        Aliases *to* ``var`` recorded the old value — materialise them as
        pins (or ranges) when the old value is known, sever them otherwise.
        """
        old_pin = self.pins.get(var)
        old_range = self.ranges.get(var)
        for name, alias in list(self.aliases.items()):
            if alias.other != var:
                continue
            del self.aliases[name]
            if old_pin is not None:
                self.pins[name] = Pin(
                    var=name, value=old_pin.value, rendered=old_pin.rendered,
                    stage=alias.stage, bind=alias.bind, guard=alias.guard)
            elif old_range is not None:
                self.ranges[name] = Range(
                    var=name, interval=old_range.interval, stage=alias.stage,
                    bind=alias.bind, guards=old_range.guards)
        self.pins.pop(var, None)
        self.aliases.pop(var, None)
        self.ranges.pop(var, None)


def _render_value(value) -> str:
    if isinstance(value, VarRef):
        return f"${value.name}"
    return repr(value.value)


def _trail_related(trail: List[object]) -> List[Related]:
    out: List[Related] = []
    for fact in trail:
        if isinstance(fact, Pin):
            out.append(related_to(
                f"${fact.var} is pinned here: bound from a field stage "
                f"{fact.stage!r} guards == {fact.rendered}", fact.bind))
        else:
            out.append(related_to(
                f"${fact.var} aliases ${fact.other} here: bound from a "
                f"field stage {fact.stage!r} guards == ${fact.other}",
                fact.bind))
    return out


def _explain(trail: List[object]) -> str:
    parts = []
    for fact in trail:
        if isinstance(fact, Pin):
            parts.append(
                f"stage {fact.stage!r} pins ${fact.var} to {fact.rendered}")
        else:
            parts.append(
                f"stage {fact.stage!r} binds ${fact.var} equal to "
                f"${fact.other}")
    return "; ".join(parts)


def _range_related(rng: Range) -> List[Related]:
    out = [related_to(
        f"${rng.var} is confined here: bound from a field stage "
        f"{rng.stage!r} constrains to {render_interval(rng.interval)}",
        rng.bind)]
    out.extend(
        related_to(
            f"stage {rng.stage!r} bounding guard here", guard)
        for guard in rng.guards
    )
    return out


def _check_pattern(
    stage: StageAst, pattern: PatternAst, env: StageEnv, prop_name: str,
    in_unless: bool,
) -> Iterator[Diagnostic]:
    eqs: Dict[str, List[Comparison]] = {}
    nes: Dict[str, List[Comparison]] = {}
    ords: Dict[str, List[Comparison]] = {}
    for condition in pattern.conditions:
        if not isinstance(condition, Comparison):
            continue
        if condition.op == "==":
            target = eqs
        elif condition.op == "!=":
            target = nes
        else:
            target = ords
        target.setdefault(condition.field, []).append(condition)
    where = (f"unless pattern on stage {stage.name!r} is unreachable"
             if in_unless else f"stage {stage.name!r} can never match")
    for field_name, eq_list in eqs.items():
        for eq in eq_list:
            for ne in nes.get(field_name, []):
                # Token-identical eq/ne pairs are L005's (or L006's, in
                # unless) within-pattern contradiction; L016 owns only
                # the pairs a cross-stage fact is needed to expose.
                if _token(eq.value) == _token(ne.value):
                    continue
                eq_norm, eq_trail = env.resolve(eq.value)
                ne_norm, ne_trail = env.resolve(ne.value)
                if eq_trail == [] and ne_trail == []:
                    continue  # nothing cross-stage involved
                if eq_norm != ne_norm:
                    continue
                explanation = _explain(eq_trail + ne_trail)
                related = tuple(
                    [related_to(
                        f"conflicts with the guard {field_name} == "
                        f"{_render_value(eq.value)} here", eq)]
                    + _trail_related(eq_trail) + _trail_related(ne_trail))
                yield make(
                    "L016",
                    f"{where}: {field_name} == {_render_value(eq.value)} "
                    f"and {field_name} != {_render_value(ne.value)} can "
                    f"never both hold — {explanation}",
                    ne, prop=prop_name, related=related,
                )
            for cmp_cond in ords.get(field_name, []):
                yield from _check_eq_vs_ordered(
                    where, field_name, eq, cmp_cond, env, prop_name)
    for field_name, cmp_list in ords.items():
        resolved = []
        for cond in cmp_list:
            norm, trail = env.resolve(cond.value)
            if norm[0] == "lit":
                resolved.append((cond, norm[1], trail))
        for i, (first, first_val, first_trail) in enumerate(resolved):
            for second, second_val, second_trail in resolved[i + 1:]:
                if not (first_trail or second_trail):
                    continue  # both literal in-pattern: L005's case
                try:
                    met = intersect(interval_of(first.op, first_val),
                                    interval_of(second.op, second_val))
                except TypeError:
                    continue
                if met is not None:
                    continue
                explanation = _explain(first_trail + second_trail)
                related = tuple(
                    [related_to(
                        f"conflicts with the guard {field_name} "
                        f"{first.op} {_render_value(first.value)} here",
                        first)]
                    + _trail_related(first_trail)
                    + _trail_related(second_trail))
                yield make(
                    "L016",
                    f"{where}: {field_name} {first.op} "
                    f"{_render_value(first.value)} and {field_name} "
                    f"{second.op} {_render_value(second.value)} can never "
                    f"both hold — {explanation}",
                    second, prop=prop_name, related=related,
                )


def _check_eq_vs_ordered(
    where: str, field_name: str, eq: Comparison, cmp_cond: Comparison,
    env: StageEnv, prop_name: str,
) -> Iterator[Diagnostic]:
    eq_norm, eq_trail = env.resolve(eq.value)
    bound_norm, bound_trail = env.resolve(cmp_cond.value)
    if bound_norm[0] != "lit":
        return
    if eq_norm[0] == "lit":
        if not (eq_trail or bound_trail):
            return  # both literal in-pattern: L005's case
        try:
            satisfied = CMP_FNS[cmp_cond.op](eq_norm[1], bound_norm[1])
        except TypeError:
            return
        if satisfied:
            return
        explanation = _explain(eq_trail + bound_trail)
        related = tuple(
            [related_to(
                f"conflicts with the guard {field_name} == "
                f"{_render_value(eq.value)} here", eq)]
            + _trail_related(eq_trail) + _trail_related(bound_trail))
        yield make(
            "L016",
            f"{where}: {field_name} == {_render_value(eq.value)} and "
            f"{field_name} {cmp_cond.op} {_render_value(cmp_cond.value)} "
            f"can never both hold — {explanation}",
            cmp_cond, prop=prop_name, related=related,
        )
        return
    # eq resolves to a variable: contradiction provable when the
    # variable carries a range fact disjoint from the ordered guard
    rng = env.ranges.get(eq_norm[1])
    if rng is None:
        return
    try:
        met = intersect(rng.interval, interval_of(cmp_cond.op, bound_norm[1]))
    except TypeError:
        return
    if met is not None:
        return
    explanation = "; ".join(filter(None, [
        _explain(eq_trail + bound_trail),
        f"stage {rng.stage!r} confines ${rng.var} to "
        f"{render_interval(rng.interval)}",
    ]))
    related = tuple(
        [related_to(
            f"conflicts with the guard {field_name} == "
            f"{_render_value(eq.value)} here", eq)]
        + _trail_related(eq_trail) + _trail_related(bound_trail)
        + _range_related(rng))
    yield make(
        "L016",
        f"{where}: {field_name} == {_render_value(eq.value)} and "
        f"{field_name} {cmp_cond.op} {_render_value(cmp_cond.value)} "
        f"can never both hold — {explanation}",
        cmp_cond, prop=prop_name, related=related,
    )


def _token(value) -> Tuple[str, object]:
    if isinstance(value, VarRef):
        return ("var", value.name)
    return ("lit", value.value)


def rule_cross_stage_contradiction(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L016 — guards unsatisfiable under earlier stages' guarantees."""
    env = StageEnv()
    for stage in prop.stages:
        # A stage's guards see facts from strictly earlier stages (its
        # own binds take effect only once the pattern matches).
        yield from _check_pattern(stage, stage.pattern, env, prop.name,
                                  in_unless=False)
        for unless in stage.unless:
            yield from _check_pattern(stage, unless, env, prop.name,
                                      in_unless=True)
        env.absorb(stage)


def stage_environments(prop: PropertyAst) -> List[Dict[str, object]]:
    """The environment visible to each stage's guards, for tooling: a
    list (one entry per stage, same order) of ``var -> fact`` snapshots
    taken *before* that stage's own pattern is absorbed."""
    env = StageEnv()
    snapshots: List[Dict[str, object]] = []
    for stage in prop.stages:
        snapshot: Dict[str, object] = {}
        snapshot.update(env.aliases)
        snapshot.update(env.ranges)
        snapshot.update(env.pins)  # pins win when several facts exist
        snapshots.append(snapshot)
        env.absorb(stage)
    return snapshots
