"""Cross-stage dataflow analysis (rule L016).

L005 reasons about one pattern at a time, so it cannot see that a guard
is unsatisfiable because of what *earlier* stages guarantee.  The classic
miss::

    observe knock : arrival
        where tcp.dst == 7001
        bind P = tcp.dst            # P is pinned: P == 7001, always
    observe open : arrival
        where tcp.dst == $P and tcp.dst != 7001   # can never both hold

Within the ``open`` pattern the two guards compare different *tokens*
(``$P`` vs ``7001``), so L005 stays quiet — but stage ``knock`` only
fires when ``tcp.dst == 7001``, and binding ``P`` off the same field in
the same pattern pins ``P`` to that constant for every instance.

This pass runs an abstract interpretation over the stage sequence,
propagating two kinds of facts into each later stage's guard
environment:

* **pins** — ``bind V = f`` in a pattern that also guards ``f == lit``
  makes ``V == lit`` in every reachable instance;
* **aliases** — ``bind V = f`` alongside ``f == $X`` makes ``V == X``
  (and transitively inherits X's pin, if any).

Rebinding a variable (L003's shadowing) conservatively invalidates its
facts; aliases pointing at the rebound variable are materialised into
pins first when possible, severed otherwise — the analysis only ever
*loses* facts at merge points, so every finding it reports is a genuine
contradiction, never a may-alias guess.

Each finding carries :class:`~repro.lint.diagnostics.Related` positions
pointing at **both** conflicting sites: the other guard in the pattern
and the earlier-stage bind/guard pair the pinned value traces back to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..lang.ast import Comparison, PatternAst, PropertyAst, StageAst, VarRef
from .diagnostics import Diagnostic, Related, make, related_to


@dataclass(frozen=True)
class Pin:
    """``var == value`` holds in every instance reaching later stages."""

    var: str
    value: object  # the pinning literal's python value
    rendered: str  # how to print it in messages
    stage: str  # stage whose pattern established the fact
    bind: object  # the BindAst node
    guard: object  # the Comparison node that pinned the bound field


@dataclass(frozen=True)
class Alias:
    """``var == other`` holds (bound off a field guarded equal to $other)."""

    var: str
    other: str
    stage: str
    bind: object
    guard: object


class StageEnv:
    """Facts earlier stages guarantee about variable values."""

    def __init__(self) -> None:
        self.pins: Dict[str, Pin] = {}
        self.aliases: Dict[str, Alias] = {}

    # -- resolution ---------------------------------------------------------
    def resolve(self, value: object) -> Tuple[Tuple[str, object], List[object]]:
        """Normalise a guard value to ``("lit", v)`` or ``("var", root)``.

        Returns the normalised token and the trail of facts (Pins/Aliases,
        in derivation order) the normalisation walked through — the trail
        is what the diagnostic's related positions are built from.
        """
        if not isinstance(value, VarRef):
            return ("lit", value.value), []
        name = value.name
        trail: List[object] = []
        seen = set()
        while name not in seen:
            seen.add(name)
            pin = self.pins.get(name)
            if pin is not None:
                trail.append(pin)
                return ("lit", pin.value), trail
            alias = self.aliases.get(name)
            if alias is None:
                break
            trail.append(alias)
            name = alias.other
        return ("var", name), trail

    # -- fact propagation ---------------------------------------------------
    def absorb(self, stage: StageAst) -> None:
        """Fold one stage's main pattern into the environment."""
        pattern = stage.pattern
        field_lit: Dict[str, Comparison] = {}
        field_var: Dict[str, Comparison] = {}
        for condition in pattern.conditions:
            if not isinstance(condition, Comparison) or condition.op != "==":
                continue
            if isinstance(condition.value, VarRef):
                field_var.setdefault(condition.field, condition)
            else:
                field_lit.setdefault(condition.field, condition)
        for bind in pattern.binds:
            self._invalidate(bind.var)
            pinning = field_lit.get(bind.field)
            aliasing = field_var.get(bind.field)
            if pinning is not None:
                self.pins[bind.var] = Pin(
                    var=bind.var, value=pinning.value.value,
                    rendered=repr(pinning.value.value), stage=stage.name,
                    bind=bind, guard=pinning)
            elif aliasing is not None:
                other = aliasing.value.name
                if other != bind.var:
                    self.aliases[bind.var] = Alias(
                        var=bind.var, other=other, stage=stage.name,
                        bind=bind, guard=aliasing)

    def _invalidate(self, var: str) -> None:
        """A rebind of ``var``: earlier facts about it no longer hold.

        Aliases *to* ``var`` recorded the old value — materialise them as
        pins when the old value is known, sever them otherwise.
        """
        old_pin = self.pins.get(var)
        for name, alias in list(self.aliases.items()):
            if alias.other != var:
                continue
            del self.aliases[name]
            if old_pin is not None:
                self.pins[name] = Pin(
                    var=name, value=old_pin.value, rendered=old_pin.rendered,
                    stage=alias.stage, bind=alias.bind, guard=alias.guard)
        self.pins.pop(var, None)
        self.aliases.pop(var, None)


def _render_value(value) -> str:
    if isinstance(value, VarRef):
        return f"${value.name}"
    return repr(value.value)


def _trail_related(trail: List[object]) -> List[Related]:
    out: List[Related] = []
    for fact in trail:
        if isinstance(fact, Pin):
            out.append(related_to(
                f"${fact.var} is pinned here: bound from a field stage "
                f"{fact.stage!r} guards == {fact.rendered}", fact.bind))
        else:
            out.append(related_to(
                f"${fact.var} aliases ${fact.other} here: bound from a "
                f"field stage {fact.stage!r} guards == ${fact.other}",
                fact.bind))
    return out


def _explain(trail: List[object]) -> str:
    parts = []
    for fact in trail:
        if isinstance(fact, Pin):
            parts.append(
                f"stage {fact.stage!r} pins ${fact.var} to {fact.rendered}")
        else:
            parts.append(
                f"stage {fact.stage!r} binds ${fact.var} equal to "
                f"${fact.other}")
    return "; ".join(parts)


def _check_pattern(
    stage: StageAst, pattern: PatternAst, env: StageEnv, prop_name: str,
    in_unless: bool,
) -> Iterator[Diagnostic]:
    eqs: Dict[str, List[Comparison]] = {}
    nes: Dict[str, List[Comparison]] = {}
    for condition in pattern.conditions:
        if not isinstance(condition, Comparison):
            continue
        target = eqs if condition.op == "==" else nes
        target.setdefault(condition.field, []).append(condition)
    for field_name, eq_list in eqs.items():
        for eq in eq_list:
            for ne in nes.get(field_name, []):
                # Token-identical eq/ne pairs are L005's (or L006's, in
                # unless) within-pattern contradiction; L016 owns only
                # the pairs a cross-stage fact is needed to expose.
                if _token(eq.value) == _token(ne.value):
                    continue
                eq_norm, eq_trail = env.resolve(eq.value)
                ne_norm, ne_trail = env.resolve(ne.value)
                if eq_trail == [] and ne_trail == []:
                    continue  # nothing cross-stage involved
                if eq_norm != ne_norm:
                    continue
                where = (f"unless pattern on stage {stage.name!r} is "
                         "unreachable" if in_unless
                         else f"stage {stage.name!r} can never match")
                explanation = _explain(eq_trail + ne_trail)
                related = tuple(
                    [related_to(
                        f"conflicts with the guard {field_name} == "
                        f"{_render_value(eq.value)} here", eq)]
                    + _trail_related(eq_trail) + _trail_related(ne_trail))
                yield make(
                    "L016",
                    f"{where}: {field_name} == {_render_value(eq.value)} "
                    f"and {field_name} != {_render_value(ne.value)} can "
                    f"never both hold — {explanation}",
                    ne, prop=prop_name, related=related,
                )


def _token(value) -> Tuple[str, object]:
    if isinstance(value, VarRef):
        return ("var", value.name)
    return ("lit", value.value)


def rule_cross_stage_contradiction(prop: PropertyAst) -> Iterator[Diagnostic]:
    """L016 — guards unsatisfiable under earlier stages' guarantees."""
    env = StageEnv()
    for stage in prop.stages:
        # A stage's guards see facts from strictly earlier stages (its
        # own binds take effect only once the pattern matches).
        yield from _check_pattern(stage, stage.pattern, env, prop.name,
                                  in_unless=False)
        for unless in stage.unless:
            yield from _check_pattern(stage, unless, env, prop.name,
                                      in_unless=True)
        env.absorb(stage)


def stage_environments(prop: PropertyAst) -> List[Dict[str, object]]:
    """The environment visible to each stage's guards, for tooling: a
    list (one entry per stage, same order) of ``var -> fact`` snapshots
    taken *before* that stage's own pattern is absorbed."""
    env = StageEnv()
    snapshots: List[Dict[str, object]] = []
    for stage in prop.stages:
        snapshot: Dict[str, object] = {}
        snapshot.update(env.aliases)
        snapshot.update(env.pins)  # pins win when both exist
        snapshots.append(snapshot)
        env.absorb(stage)
    return snapshots
