"""Structured lint diagnostics: stable codes, severities, source spans.

Every finding the linter produces is a :class:`Diagnostic` carrying a
stable rule code (``L001``, ``L101``, …), a severity, a message, and the
1-based source position of the AST node it anchors to (0 when the node was
built programmatically and has no position).  The code space is
partitioned by pass family:

* ``L000``        — parse / compile errors surfaced as diagnostics;
* ``L001``–``L099`` — correctness lints over the AST/IR;
* ``L100``–``L199`` — backend feasibility (the static ``repro survey``);
* ``L200``–``L299`` — split-mode read-after-deferred-write hazards.

:data:`RULES` is the canonical registry; ``docs/LINTING.md`` catalogs the
same codes with bad/good examples, and a test keeps the two in sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.Enum):
    """Diagnostic severities, ordered by gravity."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    slug: str  # short kebab-case name, e.g. "contradictory-guards"
    severity: Severity  # default severity
    summary: str  # one-line description for docs / --help


#: The canonical rule registry.  Codes are append-only: once shipped, a
#: code keeps its meaning forever (suppression annotations reference them).
RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule("L000", "syntax-error", Severity.ERROR,
             "the file does not parse or a property does not elaborate"),
        Rule("L001", "undefined-variable", Severity.ERROR,
             "a guard references a $variable no earlier stage binds"),
        Rule("L002", "unused-variable", Severity.WARNING,
             "a bound $variable is never read by a guard or the instance key"),
        Rule("L003", "shadowed-bind", Severity.WARNING,
             "a later stage rebinds a $variable, shadowing the earlier value"),
        Rule("L004", "duplicate-guard", Severity.WARNING,
             "the same guard appears twice in one pattern"),
        Rule("L005", "contradictory-guards", Severity.ERROR,
             "two guards on one field can never hold together"),
        Rule("L006", "unreachable-unless", Severity.WARNING,
             "an unless pattern can never match (contradictory or duplicate)"),
        Rule("L007", "bad-within", Severity.ERROR,
             "a within deadline is missing, non-positive, or on stage 0"),
        Rule("L008", "type-mismatch", Severity.ERROR,
             "a literal or variable's type disagrees with the field's type"),
        Rule("L009", "literal-overflow", Severity.ERROR,
             "an integer literal exceeds the field's register width"),
        Rule("L010", "unknown-field", Severity.WARNING,
             "a field name is not in the header schema"),
        Rule("L011", "key-not-bound", Severity.ERROR,
             "a declared key variable is not bound by stage 0"),
        Rule("L012", "bad-first-stage", Severity.ERROR,
             "the first stage is negative (nothing would create instances)"),
        Rule("L013", "duplicate-stage", Severity.ERROR,
             "two stages share a name"),
        Rule("L014", "unknown-samepacket", Severity.ERROR,
             "samepacket references a stage that does not precede this one"),
        Rule("L015", "hot-event-scan", Severity.WARNING,
             "a stage with no indexable guard scans every live instance "
             "on a per-packet event kind"),
        Rule("L016", "cross-stage-contradiction", Severity.ERROR,
             "a stage's guards can never hold given what earlier stages' "
             "binds and guards guarantee"),
        Rule("L017", "attacker-keyed-instances", Severity.WARNING,
             "every instance-key variable is attacker-controlled: a sender "
             "can mint unbounded monitor instances (state exhaustion)"),
        Rule("L018", "timeout-evasion-window", Severity.WARNING,
             "a within deadline is reachable (and refreshable) purely via "
             "attacker-controlled events, so a paced sender evades it"),
        Rule("L019", "tainted-violation-predicate", Severity.INFO,
             "every guard on the violating path reads attacker-controlled "
             "fields only, so the violation itself is spoofable"),
        Rule("L100", "infeasible-everywhere", Severity.ERROR,
             "no surveyed backend can host the property"),
        Rule("L101", "backend-infeasible", Severity.INFO,
             "a backend cannot host the property (names the missing feature)"),
        Rule("L102", "target-infeasible", Severity.ERROR,
             "the backend selected with --backend cannot host the property"),
        Rule("L200", "split-advance-race", Severity.WARNING,
             "a stage's advancing event can outrun the deferred state update"),
        Rule("L201", "split-discharge-race", Severity.WARNING,
             "an absent stage's discharging event can race the deferred "
             "timer install (spurious violation)"),
        Rule("L202", "deadline-within-lag", Severity.WARNING,
             "an absent deadline is shorter than the split-mode update lag"),
        Rule("L203", "split-cancel-race", Severity.WARNING,
             "an unless cancellation can race the deferred state update"),
    )
}


@dataclass(frozen=True)
class Related:
    """A secondary source position a finding points at (e.g. the earlier
    stage's bind a cross-stage contradiction traces back to)."""

    message: str
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source position."""

    code: str
    severity: Severity
    message: str
    line: int = 0
    column: int = 0
    #: name of the property the finding belongs to ("" for file-level)
    prop: str = ""
    path: str = ""
    #: further positions involved in the finding, in presentation order
    related: Tuple[Related, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unregistered rule code {self.code!r}")
        # Related positions render in source order regardless of the
        # order a rule discovered them — diagnostics stay byte-stable
        # across refactors of the rules' internal iteration.
        object.__setattr__(
            self, "related",
            tuple(sorted(self.related,
                         key=lambda r: (r.line, r.column, r.message))),
        )

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def sort_key(self) -> Tuple[int, int, int, str]:
        return (self.line, self.column, self.severity.rank, self.code)


def related_to(message: str, node: object = None) -> Related:
    """Build a :class:`Related` position, lifting line/column off ``node``."""
    return Related(
        message=message,
        line=getattr(node, "line", 0) or 0,
        column=getattr(node, "column", 0) or 0,
    )


def make(code: str, message: str, node: object = None, *,
         prop: str = "", severity: Optional[Severity] = None,
         related: Tuple[Related, ...] = ()) -> Diagnostic:
    """Build a diagnostic, lifting the position off any AST ``node``."""
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else RULES[code].severity,
        message=message,
        line=getattr(node, "line", 0) or 0,
        column=getattr(node, "column", 0) or 0,
        prop=prop,
        related=related,
    )
