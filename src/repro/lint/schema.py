"""The header-field schema the type/width lints check against.

Field names in the property language are dotted paths into the flat event
field map (:func:`repro.core.refs.event_fields`).  This module gives each
known field a *kind* (``ip``, ``mac``, ``int``, ``str``, ``enum``,
``float``) and, for integer fields, the register width in bits — the
widths a switch would burn per instance to carry the value (see the
split-mode cost estimate).

A unit test builds one packet of every protocol the reproduction parses
and asserts each emitted field name appears here, so the schema cannot
silently fall behind :mod:`repro.packet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..packet.addresses import IPv4Address, MACAddress


@dataclass(frozen=True)
class FieldType:
    """Static type of one dotted field."""

    kind: str  # "ip" | "mac" | "int" | "str" | "enum" | "float"
    bits: int  # register width; 0 for unsized kinds (str, float, enum)


_I = FieldType  # local shorthand for the table below

#: dotted field name -> static type.  Widths follow the wire formats in
#: :mod:`repro.packet.headers` / :mod:`repro.packet.dhcp` /
#: :mod:`repro.packet.ftp`.
FIELD_SCHEMA: Dict[str, FieldType] = {
    # L2
    "eth.src": _I("mac", 48),
    "eth.dst": _I("mac", 48),
    "eth.type": _I("int", 16),
    "vlan.vid": _I("int", 12),
    "vlan.pcp": _I("int", 3),
    # ARP
    "arp.op": _I("int", 16),
    "arp.sender_mac": _I("mac", 48),
    "arp.sender_ip": _I("ip", 32),
    "arp.target_mac": _I("mac", 48),
    "arp.target_ip": _I("ip", 32),
    # IPv4
    "ipv4.src": _I("ip", 32),
    "ipv4.dst": _I("ip", 32),
    "ipv4.proto": _I("int", 8),
    "ipv4.ttl": _I("int", 8),
    "ipv4.dscp": _I("int", 6),
    # L4
    "tcp.src": _I("int", 16),
    "tcp.dst": _I("int", 16),
    "tcp.flags": _I("int", 8),
    "tcp.seq": _I("int", 32),
    "tcp.ack": _I("int", 32),
    "udp.src": _I("int", 16),
    "udp.dst": _I("int", 16),
    "icmp.type": _I("int", 8),
    "icmp.code": _I("int", 8),
    # DHCP (L7)
    "dhcp.op": _I("int", 8),
    "dhcp.msg_type": _I("int", 8),
    "dhcp.xid": _I("int", 32),
    "dhcp.client_mac": _I("mac", 48),
    "dhcp.yiaddr": _I("ip", 32),
    "dhcp.requested_ip": _I("ip", 32),
    "dhcp.lease_time": _I("int", 32),
    "dhcp.server_id": _I("ip", 32),
    # FTP (L7)
    "ftp.line": _I("str", 0),
    "ftp.data_ip": _I("ip", 32),
    "ftp.data_port": _I("int", 16),
    # event metadata (repro.core.refs.event_fields)
    "in_port": _I("int", 32),
    "out_port": _I("int", 32),
    "oob.port": _I("int", 32),
    "uid": _I("int", 64),
    "time": _I("float", 0),
    "switch": _I("str", 0),
    "egress.action": _I("enum", 0),
    "drop.reason": _I("str", 0),
    "oob.kind": _I("enum", 0),
    "timer.id": _I("str", 0),
}

#: width assumed for fields outside the schema (cost estimates only).
DEFAULT_FIELD_BITS = 32


def field_type(name: str) -> Optional[FieldType]:
    """The schema entry for a field, or None if unknown."""
    return FIELD_SCHEMA.get(name)


def field_bits(name: str) -> int:
    """Register width to carry one value of this field."""
    ftype = FIELD_SCHEMA.get(name)
    if ftype is None or ftype.bits == 0:
        return DEFAULT_FIELD_BITS
    return ftype.bits


def literal_kind(value: object) -> str:
    """Classify a parsed literal the way the schema classifies fields."""
    if isinstance(value, IPv4Address):
        return "ip"
    if isinstance(value, MACAddress):
        return "mac"
    if isinstance(value, bool):  # bool is an int subclass; keep it distinct
        return "int"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


def literal_mismatch(field_name: str, value: object) -> Optional[str]:
    """Why ``field == value`` can never hold, or None if it type-checks.

    Integer literals on int fields are range-checked separately
    (:func:`literal_overflow`); here only *kind* clashes are reported —
    an IP literal against a MAC field, a float against a port, a string
    against an address.
    """
    ftype = FIELD_SCHEMA.get(field_name)
    if ftype is None:
        return None  # unknown field: L010's problem, not L008's
    vkind = ftype.kind
    lkind = literal_kind(value)
    if vkind == lkind:
        return None
    # ints compare successfully against enum-ish metadata and floats.
    if vkind in ("enum", "float") and lkind in ("int", "float"):
        return None
    if vkind == "int" and lkind == "float":
        if isinstance(value, float) and value.is_integer():
            return None
        return (f"field {field_name} is a {ftype.bits}-bit integer but the "
                f"literal {value!r} is a non-integral float")
    return (f"field {field_name} holds {_kind_article(vkind)} but the "
            f"literal {value!r} is {_kind_article(lkind)}")


def literal_overflow(field_name: str, value: object) -> Optional[str]:
    """Why an integer literal cannot fit the field's width, or None."""
    ftype = FIELD_SCHEMA.get(field_name)
    if ftype is None or ftype.kind != "int" or not isinstance(value, int):
        return None
    if value < 0:
        return (f"field {field_name} is unsigned; the literal {value} can "
                "never match")
    if value >= (1 << ftype.bits):
        return (f"literal {value} overflows {field_name}'s {ftype.bits}-bit "
                f"width (max {(1 << ftype.bits) - 1})")
    return None


def kinds_compatible(kind_a: str, kind_b: str) -> bool:
    """Whether values of two field kinds can ever compare equal."""
    if kind_a == kind_b:
        return True
    numeric = {"int", "float", "enum"}
    return kind_a in numeric and kind_b in numeric


def _kind_article(kind: str) -> str:
    return {
        "ip": "an IPv4 address",
        "mac": "a MAC address",
        "int": "an integer",
        "float": "a number",
        "str": "a string",
        "enum": "an enumerated value",
    }[kind]
