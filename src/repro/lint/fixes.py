"""Mechanical autofixes for lint findings (``repro lint --fix``).

Three rules are mechanically fixable — their fixes delete dead syntax
and provably cannot change what the property matches:

* **L004 duplicate guards** — a guard repeated verbatim in one pattern
  is idempotent; drop every repeat after the first.
* **L002 unused binds** — a bind never read by any guard or the
  instance key writes a value nothing observes; drop it.  Skipped when
  the property uses named ``@predicates`` (a predicate may read any
  bound variable through the environment) and for stage-0 binds of a
  property with no explicit ``key`` (those binds *are* the implicit
  key).
* **L003 shadowed rebinds** — an exact within-stage duplicate bind
  (same variable, same field) is dropped always; a cross-stage rebind
  is dropped only when it is *dead* — the variable is a non-key
  variable no later stage (or the rebinding stage's own ``unless``)
  reads — so the overwritten value could never be observed.

Fixes apply at the AST level and iterate to a fixpoint, then the file is
rewritten by splicing each changed property's reformatted text
(:func:`repro.lang.format.format_ast`) over its original line span.
``#`` comments in the span (including lint suppressions) survive the
splice: standalone comment blocks re-anchor to the code line that
followed them, trailing comments re-join their line, and a comment whose
line the fix deleted sinks to the end of the property instead of
vanishing.  Text outside rewritten spans is preserved byte-for-byte, and
a second ``--fix`` pass is a no-op (idempotence is locked by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from ..lang.ast import BindAst, Comparison, PatternAst, PropertyAst, StageAst
from ..lang.format import format_ast
from ..lang.parser import ParseError, parse

#: The rule codes ``--fix`` knows how to repair.
FIXABLE = ("L002", "L003", "L004")

#: veto hook: may this (code, source line) actually be repaired?  The
#: file-level driver wires this to the lint suppressions so ``--fix``
#: never deletes syntax whose diagnostic the author silenced.
FixFilter = Callable[[str, int], bool]


def _allow_all(code: str, line: int) -> bool:
    return True


@dataclass(frozen=True)
class AppliedFix:
    """One mechanical repair made to one property."""

    code: str
    prop: str
    line: int  # source line of the removed syntax (0 if unknown)
    description: str


@dataclass(frozen=True)
class SkippedProperty:
    """A property --fix left alone, and why."""

    prop: str
    line: int
    reason: str


@dataclass(frozen=True)
class FixResult:
    """The outcome of fixing one source file."""

    source: str  # the rewritten text (== input when nothing changed)
    fixes: Tuple[AppliedFix, ...]
    skipped: Tuple[SkippedProperty, ...]

    @property
    def changed(self) -> bool:
        return bool(self.fixes)


# ---------------------------------------------------------------------------
# AST-level transformations
# ---------------------------------------------------------------------------
def _has_named_predicates(prop: PropertyAst) -> bool:
    from .rules import _has_named_predicates as impl

    return impl(prop)


def _all_patterns(prop: PropertyAst) -> Iterator[PatternAst]:
    for stage in prop.stages:
        yield stage.pattern
        yield from stage.unless


def _refs(pattern: PatternAst) -> Set[str]:
    from .rules import _var_refs

    return {ref.name for ref in _var_refs(pattern)}


def _comparison_token(condition: Comparison):
    from .rules import _comparison_key

    return _comparison_key(condition)


def _fix_duplicate_guards(
    prop: PropertyAst, allowed: FixFilter = _allow_all
) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L004: drop verbatim guard repeats (main patterns, matching the rule)."""
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    for stage in prop.stages:
        seen = set()
        kept = []
        for condition in stage.pattern.conditions:
            if isinstance(condition, Comparison):
                key = _comparison_token(condition)
                if key in seen and allowed("L004", condition.line):
                    fixes.append(AppliedFix(
                        "L004", prop.name, condition.line,
                        f"dropped repeated guard {condition.field} "
                        f"{condition.op} … in stage {stage.name!r}"))
                    continue
                seen.add(key)
            kept.append(condition)
        if len(kept) != len(stage.pattern.conditions):
            stage = replace(
                stage, pattern=replace(stage.pattern, conditions=tuple(kept)))
        stages.append(stage)
    return replace(prop, stages=tuple(stages)), fixes


def _fix_unused_binds(
    prop: PropertyAst, allowed: FixFilter = _allow_all
) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L002: drop binds nothing reads (mirrors the rule's skip conditions)."""
    if _has_named_predicates(prop):
        return prop, []
    used: Set[str] = set()
    for pattern in _all_patterns(prop):
        used |= _refs(pattern)
    key_vars = set(prop.key_vars)
    implicit_key = not key_vars  # stage-0 binds *are* the key: keep them
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    for index, stage in enumerate(prop.stages):
        kept = []
        for bind in stage.pattern.binds:
            removable = (
                bind.var not in used
                and bind.var not in key_vars
                and not (implicit_key and index == 0)
                and allowed("L002", bind.line)
            )
            if removable:
                fixes.append(AppliedFix(
                    "L002", prop.name, bind.line,
                    f"dropped unused bind {bind.var} = {bind.field} in "
                    f"stage {stage.name!r}"))
            else:
                kept.append(bind)
        if len(kept) != len(stage.pattern.binds):
            stage = replace(
                stage, pattern=replace(stage.pattern, binds=tuple(kept)))
        stages.append(stage)
    return replace(prop, stages=tuple(stages)), fixes


def _fix_shadowed_binds(
    prop: PropertyAst, allowed: FixFilter = _allow_all
) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L003: drop exact within-stage duplicates and *dead* cross-stage
    rebinds (non-key variable, unread at or after the rebinding stage)."""
    predicates = _has_named_predicates(prop)
    key_vars = set(prop.key_vars)
    if not key_vars and prop.stages:
        key_vars = {b.var for b in prop.stages[0].pattern.binds}
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    bound_earlier: Set[str] = set()
    for index, stage in enumerate(prop.stages):
        read_later: Set[str] = set()
        for later in prop.stages[index + 1:]:
            read_later |= _refs(later.pattern)
            for unless in later.unless:
                read_later |= _refs(unless)
        for unless in stage.unless:
            read_later |= _refs(unless)
        seen_here: List[BindAst] = []
        kept = []
        for bind in stage.pattern.binds:
            exact_dup = allowed("L003", bind.line) and any(
                b.var == bind.var and b.field == bind.field
                for b in seen_here)
            dead_rebind = (
                not predicates
                and bind.var in bound_earlier
                and bind.var not in key_vars
                and bind.var not in read_later
                and allowed("L003", bind.line)
            )
            if exact_dup:
                fixes.append(AppliedFix(
                    "L003", prop.name, bind.line,
                    f"dropped duplicate bind {bind.var} = {bind.field} in "
                    f"stage {stage.name!r}"))
                continue
            if dead_rebind:
                fixes.append(AppliedFix(
                    "L003", prop.name, bind.line,
                    f"dropped dead rebind of {bind.var} in stage "
                    f"{stage.name!r} (the rebound value is never read)"))
                continue
            seen_here.append(bind)
            kept.append(bind)
        if len(kept) != len(stage.pattern.binds):
            stage = replace(
                stage, pattern=replace(stage.pattern, binds=tuple(kept)))
        stages.append(stage)
        bound_earlier |= {b.var for b in stage.pattern.binds}
    return replace(prop, stages=tuple(stages)), fixes


_PASSES = (_fix_duplicate_guards, _fix_shadowed_binds, _fix_unused_binds)


def fix_ast(
    prop: PropertyAst, allowed: FixFilter = _allow_all
) -> Tuple[PropertyAst, Tuple[AppliedFix, ...]]:
    """Apply every fixable rule to one property, iterated to a fixpoint
    (dropping a rebind can orphan a bind, which the next round drops)."""
    applied: List[AppliedFix] = []
    for _ in range(16):  # fixpoint bound: each round deletes >= 1 node
        round_fixes: List[AppliedFix] = []
        for fix_pass in _PASSES:
            prop, fixes = fix_pass(prop, allowed)
            round_fixes.extend(fixes)
        if not round_fixes:
            break
        applied.extend(round_fixes)
    return prop, tuple(applied)


# ---------------------------------------------------------------------------
# Comment preservation across the reformat
# ---------------------------------------------------------------------------
def _split_comment(line: str) -> Tuple[str, str]:
    """(code, comment) — the first ``#`` outside double quotes starts the
    comment ('' when there is none)."""
    in_quote = False
    for index, char in enumerate(line):
        if char == '"':
            in_quote = not in_quote
        elif char == "#" and not in_quote:
            return line[:index], line[index:].rstrip()
    return line, ""


def _find_anchor(
    out: List[str], cursor: int, anchor: Optional[str]
) -> Optional[int]:
    """Where ``anchor`` landed in the reformatted lines (or None).

    Exact stripped-text match first; failing that, the first later line
    opening with the same keyword (``where``, ``bind``, ``observe`` …) —
    the fix usually *rewrote* the anchor line rather than deleting it,
    and the keyword identifies its successor.
    """
    if anchor is None:
        return None
    for j in range(cursor, len(out)):
        if out[j].strip() == anchor:
            return j
    tokens = anchor.split(None, 1)
    if not tokens:
        return None
    for j in range(cursor, len(out)):
        if out[j].split(None, 1)[:1] == tokens[:1]:
            return j
    return None


def _reattach_comments(
    span_lines: Sequence[str], new_lines: List[str]
) -> List[str]:
    """Carry a property span's comments into its reformatted lines.

    Each standalone comment block re-anchors to the next code line
    (matched by stripped text, scanning forward so repeated lines pair up
    in order); a trailing comment re-joins its own line.  When a fix
    deleted or reworded the anchoring line, the comment sinks to the end
    of the property rather than being dropped.
    """
    ops: List[Tuple[str, object, Optional[str]]] = []
    pending: List[str] = []
    for line in span_lines:
        stripped = line.strip()
        if stripped.startswith("#"):
            pending.append(line.rstrip())
            continue
        if not stripped:
            continue
        code, comment = _split_comment(line)
        anchor = code.strip()
        if pending:
            ops.append(("block", tuple(pending), anchor))
            pending = []
        if comment:
            ops.append(("trail", comment, anchor))
    if pending:
        ops.append(("block", tuple(pending), None))

    out = list(new_lines)
    cursor = 0
    leftovers: List[str] = []
    for kind, payload, anchor in ops:
        position = _find_anchor(out, cursor, anchor)
        if position is None:
            if kind == "block":
                leftovers.extend(payload)
            else:
                leftovers.append(payload)
            continue
        if kind == "block":
            out[position:position] = list(payload)
            cursor = position + len(payload)
        else:
            out[position] = f"{out[position]}  {payload}"
            cursor = position + 1
    if leftovers:
        out.extend(leftovers)
    return out


# ---------------------------------------------------------------------------
# File rewriting: per-property span splicing
# ---------------------------------------------------------------------------
def _property_spans(
    props: Sequence[PropertyAst], num_lines: int
) -> List[Tuple[int, int]]:
    """1-based inclusive (start, end) line spans, one per property — each
    runs to the line before the next ``property`` keyword (or EOF)."""
    spans = []
    for index, prop in enumerate(props):
        start = prop.line
        end = (props[index + 1].line - 1 if index + 1 < len(props)
               else num_lines)
        spans.append((start, end))
    return spans


def _suppression_filter(source: str) -> FixFilter:
    """A FixFilter honouring the file's ``# lint: disable`` annotations —
    a silenced diagnostic is the author saying the syntax is intentional,
    so ``--fix`` must not delete it."""
    from .engine import _Suppressions

    suppressions = _Suppressions(source)

    def allowed(code: str, line: int) -> bool:
        if code in suppressions.file_wide:
            return False
        return code not in suppressions.by_line.get(line, set())

    return allowed


def fix_source(source: str) -> FixResult:
    """Fix one property file's text; returns the (possibly) rewritten
    source plus what was fixed and what was skipped."""
    try:
        props = parse(source)
    except ParseError:
        return FixResult(source=source, fixes=(), skipped=())
    allowed = _suppression_filter(source)
    lines = source.splitlines()
    spans = _property_spans(props, len(lines))
    all_fixes: List[AppliedFix] = []
    skipped: List[SkippedProperty] = []
    replacements: List[Tuple[Tuple[int, int], List[str]]] = []
    for prop, span in zip(props, spans):
        fixed, fixes = fix_ast(prop, allowed)
        if not fixes:
            continue
        span_lines = lines[span[0] - 1:span[1]]
        all_fixes.extend(fixes)
        new_lines = format_ast(fixed).splitlines()
        if any(_split_comment(line)[1] or line.lstrip().startswith("#")
               for line in span_lines):
            new_lines = _reattach_comments(span_lines, new_lines)
        # The formatter leads each stage with a blank line; keep the
        # original span's trailing blank lines so inter-property spacing
        # survives the splice.
        while span_lines and not span_lines[-1].strip():
            new_lines.append(span_lines.pop())
        replacements.append((span, new_lines))
    if not replacements:
        return FixResult(source=source, fixes=(), skipped=tuple(skipped))
    out: List[str] = []
    cursor = 1
    for (start, end), new_lines in replacements:
        out.extend(lines[cursor - 1:start - 1])
        out.extend(new_lines)
        cursor = end + 1
    out.extend(lines[cursor - 1:])
    text = "\n".join(out)
    if source.endswith("\n") and not text.endswith("\n"):
        text += "\n"
    return FixResult(
        source=text, fixes=tuple(all_fixes), skipped=tuple(skipped))
