"""Mechanical autofixes for lint findings (``repro lint --fix``).

Three rules are mechanically fixable — their fixes delete dead syntax
and provably cannot change what the property matches:

* **L004 duplicate guards** — a guard repeated verbatim in one pattern
  is idempotent; drop every repeat after the first.
* **L002 unused binds** — a bind never read by any guard or the
  instance key writes a value nothing observes; drop it.  Skipped when
  the property uses named ``@predicates`` (a predicate may read any
  bound variable through the environment) and for stage-0 binds of a
  property with no explicit ``key`` (those binds *are* the implicit
  key).
* **L003 shadowed rebinds** — an exact within-stage duplicate bind
  (same variable, same field) is dropped always; a cross-stage rebind
  is dropped only when it is *dead* — the variable is a non-key
  variable no later stage (or the rebinding stage's own ``unless``)
  reads — so the overwritten value could never be observed.

Fixes apply at the AST level and iterate to a fixpoint, then the file is
rewritten by splicing each changed property's reformatted text
(:func:`repro.lang.format.format_ast`) over its original line span.
Properties whose span contains ``#`` comments (including lint
suppressions) are left untouched and reported as skipped — reformatting
would silently drop the comments.  Text outside rewritten spans is
preserved byte-for-byte, and a second ``--fix`` pass is a no-op
(idempotence is locked by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..lang.ast import BindAst, Comparison, PatternAst, PropertyAst, StageAst
from ..lang.format import format_ast
from ..lang.parser import ParseError, parse

#: The rule codes ``--fix`` knows how to repair.
FIXABLE = ("L002", "L003", "L004")


@dataclass(frozen=True)
class AppliedFix:
    """One mechanical repair made to one property."""

    code: str
    prop: str
    line: int  # source line of the removed syntax (0 if unknown)
    description: str


@dataclass(frozen=True)
class SkippedProperty:
    """A property --fix left alone, and why."""

    prop: str
    line: int
    reason: str


@dataclass(frozen=True)
class FixResult:
    """The outcome of fixing one source file."""

    source: str  # the rewritten text (== input when nothing changed)
    fixes: Tuple[AppliedFix, ...]
    skipped: Tuple[SkippedProperty, ...]

    @property
    def changed(self) -> bool:
        return bool(self.fixes)


# ---------------------------------------------------------------------------
# AST-level transformations
# ---------------------------------------------------------------------------
def _has_named_predicates(prop: PropertyAst) -> bool:
    from .rules import _has_named_predicates as impl

    return impl(prop)


def _all_patterns(prop: PropertyAst) -> Iterator[PatternAst]:
    for stage in prop.stages:
        yield stage.pattern
        yield from stage.unless


def _refs(pattern: PatternAst) -> Set[str]:
    from .rules import _var_refs

    return {ref.name for ref in _var_refs(pattern)}


def _comparison_token(condition: Comparison):
    from .rules import _comparison_key

    return _comparison_key(condition)


def _fix_duplicate_guards(prop: PropertyAst) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L004: drop verbatim guard repeats (main patterns, matching the rule)."""
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    for stage in prop.stages:
        seen = set()
        kept = []
        for condition in stage.pattern.conditions:
            if isinstance(condition, Comparison):
                key = _comparison_token(condition)
                if key in seen:
                    fixes.append(AppliedFix(
                        "L004", prop.name, condition.line,
                        f"dropped repeated guard {condition.field} "
                        f"{condition.op} … in stage {stage.name!r}"))
                    continue
                seen.add(key)
            kept.append(condition)
        if len(kept) != len(stage.pattern.conditions):
            stage = replace(
                stage, pattern=replace(stage.pattern, conditions=tuple(kept)))
        stages.append(stage)
    return replace(prop, stages=tuple(stages)), fixes


def _fix_unused_binds(prop: PropertyAst) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L002: drop binds nothing reads (mirrors the rule's skip conditions)."""
    if _has_named_predicates(prop):
        return prop, []
    used: Set[str] = set()
    for pattern in _all_patterns(prop):
        used |= _refs(pattern)
    key_vars = set(prop.key_vars)
    implicit_key = not key_vars  # stage-0 binds *are* the key: keep them
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    for index, stage in enumerate(prop.stages):
        kept = []
        for bind in stage.pattern.binds:
            removable = (
                bind.var not in used
                and bind.var not in key_vars
                and not (implicit_key and index == 0)
            )
            if removable:
                fixes.append(AppliedFix(
                    "L002", prop.name, bind.line,
                    f"dropped unused bind {bind.var} = {bind.field} in "
                    f"stage {stage.name!r}"))
            else:
                kept.append(bind)
        if len(kept) != len(stage.pattern.binds):
            stage = replace(
                stage, pattern=replace(stage.pattern, binds=tuple(kept)))
        stages.append(stage)
    return replace(prop, stages=tuple(stages)), fixes


def _fix_shadowed_binds(prop: PropertyAst) -> Tuple[PropertyAst, List[AppliedFix]]:
    """L003: drop exact within-stage duplicates and *dead* cross-stage
    rebinds (non-key variable, unread at or after the rebinding stage)."""
    predicates = _has_named_predicates(prop)
    key_vars = set(prop.key_vars)
    if not key_vars and prop.stages:
        key_vars = {b.var for b in prop.stages[0].pattern.binds}
    fixes: List[AppliedFix] = []
    stages: List[StageAst] = []
    bound_earlier: Set[str] = set()
    for index, stage in enumerate(prop.stages):
        read_later: Set[str] = set()
        for later in prop.stages[index + 1:]:
            read_later |= _refs(later.pattern)
            for unless in later.unless:
                read_later |= _refs(unless)
        for unless in stage.unless:
            read_later |= _refs(unless)
        seen_here: List[BindAst] = []
        kept = []
        for bind in stage.pattern.binds:
            exact_dup = any(
                b.var == bind.var and b.field == bind.field
                for b in seen_here)
            dead_rebind = (
                not predicates
                and bind.var in bound_earlier
                and bind.var not in key_vars
                and bind.var not in read_later
            )
            if exact_dup:
                fixes.append(AppliedFix(
                    "L003", prop.name, bind.line,
                    f"dropped duplicate bind {bind.var} = {bind.field} in "
                    f"stage {stage.name!r}"))
                continue
            if dead_rebind:
                fixes.append(AppliedFix(
                    "L003", prop.name, bind.line,
                    f"dropped dead rebind of {bind.var} in stage "
                    f"{stage.name!r} (the rebound value is never read)"))
                continue
            seen_here.append(bind)
            kept.append(bind)
        if len(kept) != len(stage.pattern.binds):
            stage = replace(
                stage, pattern=replace(stage.pattern, binds=tuple(kept)))
        stages.append(stage)
        bound_earlier |= {b.var for b in stage.pattern.binds}
    return replace(prop, stages=tuple(stages)), fixes


_PASSES = (_fix_duplicate_guards, _fix_shadowed_binds, _fix_unused_binds)


def fix_ast(prop: PropertyAst) -> Tuple[PropertyAst, Tuple[AppliedFix, ...]]:
    """Apply every fixable rule to one property, iterated to a fixpoint
    (dropping a rebind can orphan a bind, which the next round drops)."""
    applied: List[AppliedFix] = []
    for _ in range(16):  # fixpoint bound: each round deletes >= 1 node
        round_fixes: List[AppliedFix] = []
        for fix_pass in _PASSES:
            prop, fixes = fix_pass(prop)
            round_fixes.extend(fixes)
        if not round_fixes:
            break
        applied.extend(round_fixes)
    return prop, tuple(applied)


# ---------------------------------------------------------------------------
# File rewriting: per-property span splicing
# ---------------------------------------------------------------------------
def _property_spans(
    props: Sequence[PropertyAst], num_lines: int
) -> List[Tuple[int, int]]:
    """1-based inclusive (start, end) line spans, one per property — each
    runs to the line before the next ``property`` keyword (or EOF)."""
    spans = []
    for index, prop in enumerate(props):
        start = prop.line
        end = (props[index + 1].line - 1 if index + 1 < len(props)
               else num_lines)
        spans.append((start, end))
    return spans


def fix_source(source: str) -> FixResult:
    """Fix one property file's text; returns the (possibly) rewritten
    source plus what was fixed and what was skipped."""
    try:
        props = parse(source)
    except ParseError:
        return FixResult(source=source, fixes=(), skipped=())
    lines = source.splitlines()
    spans = _property_spans(props, len(lines))
    all_fixes: List[AppliedFix] = []
    skipped: List[SkippedProperty] = []
    replacements: List[Tuple[Tuple[int, int], List[str]]] = []
    for prop, span in zip(props, spans):
        fixed, fixes = fix_ast(prop)
        if not fixes:
            continue
        span_lines = lines[span[0] - 1:span[1]]
        if any("#" in line for line in span_lines):
            skipped.append(SkippedProperty(
                prop.name, prop.line,
                "contains comments the rewrite would drop; apply the "
                f"{sorted({f.code for f in fixes})} fixes by hand"))
            continue
        all_fixes.extend(fixes)
        new_lines = format_ast(fixed).splitlines()
        # The formatter leads each stage with a blank line; keep the
        # original span's trailing blank lines so inter-property spacing
        # survives the splice.
        while span_lines and not span_lines[-1].strip():
            new_lines.append(span_lines.pop())
        replacements.append((span, new_lines))
    if not replacements:
        return FixResult(source=source, fixes=(), skipped=tuple(skipped))
    out: List[str] = []
    cursor = 1
    for (start, end), new_lines in replacements:
        out.extend(lines[cursor - 1:start - 1])
        out.extend(new_lines)
        cursor = end + 1
    out.extend(lines[cursor - 1:])
    text = "\n".join(out)
    if source.endswith("\n") and not text.endswith("\n"):
        text += "\n"
    return FixResult(
        source=text, fixes=tuple(all_fixes), skipped=tuple(skipped))
