"""Learning switch — the paper's opening example (Sec. 1).

Two implementations:

* :class:`LearningSwitchApp` — the canonical controller-resident version:
  every table-miss punts to the app, which learns the source's port and
  either unicasts (known destination) or floods.  Fault knobs create the
  Sec. 1 violation ("once D is learned, packets to D are unicast on the
  appropriate port") and the link-down multiple-match violation.

* :func:`install_dataplane_learning` — the on-switch version built from the
  OVS/FAST ``learn`` action: table 0 learns ``eth.src -> in_port`` into
  table 1 and forwards there, no controller involved.  This is the "switches
  may run stateful programs without controller interaction" configuration
  that makes controller-based monitoring infeasible (Sec. 1's third
  advantage of on-switch monitoring).

Fault knobs (see :class:`~repro.apps.faults.FaultPlan`):

* ``flood_known`` (rate)   — sometimes flood a known destination;
* ``wrong_port`` (rate)    — sometimes unicast out the wrong port;
* ``keep_on_link_down`` (flag) — do NOT purge learned state when a port
  goes down (violates "link-down messages delete the set of learned
  destinations").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..packet.addresses import MACAddress
from ..packet.headers import Ethernet
from ..packet.packet import Packet
from ..switch.actions import Deferred, FieldRef, Flood, GotoTable, Learn, Output
from ..switch.events import OutOfBandEvent
from ..switch.match import MatchSpec
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults


class LearningSwitchApp:
    """Controller-resident MAC learning with fault injection."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self.faults = faults if faults is not None else no_faults()
        self.table: Dict[MACAddress, int] = {}

    # -- SwitchApp interface -------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.table.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        eth = packet.find(Ethernet)
        if eth is None:
            switch.drop(packet, in_port, reason="non-ethernet")
            return
        self.table[eth.src] = in_port
        out_port = self.table.get(eth.dst)
        if eth.dst.is_multicast or out_port is None:
            switch.flood(packet, in_port)
            return
        if self.faults.fires("flood_known"):
            switch.flood(packet, in_port)
            return
        if self.faults.fires("wrong_port"):
            candidates = [p for p in switch.up_ports()
                          if p not in (out_port, in_port)]
            if candidates:
                switch.inject(packet, candidates[0])
                return
        if out_port == in_port:
            switch.drop(packet, in_port, reason="hairpin")
            return
        switch.inject(packet, out_port)

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        if self.faults.enabled("keep_on_link_down"):
            return
        from ..switch.events import OobKind

        # Per the paper's multiple-match property, a link-down deletes the
        # *entire* set of learned destinations (the topology may have
        # changed under any of them), not just the downed port's entries.
        if event.oob_kind in (OobKind.PORT_DOWN, OobKind.LINK_DOWN):
            self.table.clear()

    # -- introspection -----------------------------------------------------------
    def learned_port(self, mac: MACAddress) -> Optional[int]:
        return self.table.get(mac)

    def table_size(self) -> int:
        """Entries currently learned.

        Deliberately not ``__len__``: an app object must never be falsy
        (an empty-table switch is still a switch), or ``app or default``
        idioms silently swap it out.
        """
        return len(self.table)


def install_dataplane_learning(
    switch: Switch, idle_timeout: Optional[float] = None
) -> None:
    """Program pure-dataplane MAC learning via the ``learn`` action.

    Requires the switch to have >= 2 ingress tables.  Table 0's single rule
    learns ``eth.dst == <this packet's eth.src> -> Output(<this in_port>)``
    into table 1 and continues matching there; a table-1 miss falls through
    to the pipeline's miss policy (configure FLOOD for classic behaviour).
    """
    if len(switch.pipeline.tables) < 2:
        raise ValueError("dataplane learning needs at least two ingress tables")
    learn = Learn(
        table_id=1,
        match=(("eth.dst", FieldRef("eth.src")),),
        actions=(Output(FieldRef("in_port")),),
        priority=100,
        idle_timeout=idle_timeout,
        cookie="mac-learn",
    )
    switch.install_rule(
        MatchSpec(),
        [learn, GotoTable(1)],
        table_id=0,
        priority=1,
        cookie="mac-learn-stage0",
    )
