"""Stateful firewall — the worked example of Sec. 2.1.

Topology convention: port ``internal_port`` faces the protected network,
``external_port`` faces outside.  Internal-to-external traffic always
passes and opens a pinhole for the reverse (A, B) pair; external traffic is
admitted only through a live pinhole.  Pinholes expire after
``state_timeout`` seconds and are torn down when either side closes the
connection (FIN/RST) — the behaviours whose *correctness* the firewall
property family in :mod:`repro.props.firewall` checks.

Fault knobs:

* ``drop_valid`` (rate)        — drop a return packet that has a live
  pinhole (the base property's violation);
* ``early_expiry`` (flag)      — expire pinholes at half the advertised
  timeout (violations near the window's end);
* ``ignore_close`` (flag)      — keep admitting return traffic after a
  close (violates the close-obligation variant's converse: traffic that
  *should* be dropped is forwarded — caught by the "no traffic after
  close" property);
* ``drop_after_refresh`` (flag) — forget to refresh the pinhole timer on
  new outbound traffic (violations when conversations outlive T).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..packet.addresses import IPv4Address
from ..packet.headers import TCP, IPv4, TCPFlags
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults

PinholeKey = Tuple[IPv4Address, IPv4Address]


@dataclass
class Pinhole:
    """One allowed (internal, external) address pair."""

    opened_at: float
    refreshed_at: float
    closed: bool = False


class StatefulFirewallApp:
    """Connection-tracking firewall between two ports."""

    def __init__(
        self,
        internal_port: int = 1,
        external_port: int = 2,
        state_timeout: float = 30.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if internal_port == external_port:
            raise ValueError("internal and external ports must differ")
        if state_timeout <= 0:
            raise ValueError("state_timeout must be positive")
        self.internal_port = internal_port
        self.external_port = external_port
        self.state_timeout = state_timeout
        self.faults = faults if faults is not None else no_faults()
        self.pinholes: Dict[PinholeKey, Pinhole] = {}

    # -- SwitchApp interface ----------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.pinholes.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        ip = packet.find(IPv4)
        if ip is None:
            switch.drop(packet, in_port, reason="non-ip")
            return
        now = switch.now
        if in_port == self.internal_port:
            self._handle_outbound(switch, packet, ip, now)
        elif in_port == self.external_port:
            self._handle_inbound(switch, packet, ip, now)
        else:
            switch.drop(packet, in_port, reason="unknown-port")

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- directions -----------------------------------------------------------------
    def _handle_outbound(
        self, switch: Switch, packet: Packet, ip: IPv4, now: float
    ) -> None:
        key = (ip.src, ip.dst)
        hole = self.pinholes.get(key)
        if hole is None or hole.closed or self._expired(hole, now):
            self.pinholes[key] = Pinhole(opened_at=now, refreshed_at=now)
        elif not self.faults.enabled("drop_after_refresh"):
            hole.refreshed_at = now
        if self._is_close(packet):
            self._mark_closed(key)
        switch.inject(packet, self.external_port)

    def _handle_inbound(
        self, switch: Switch, packet: Packet, ip: IPv4, now: float
    ) -> None:
        key = (ip.dst, ip.src)  # pinholes are keyed (internal, external)
        hole = self.pinholes.get(key)
        allowed = hole is not None and not self._expired(hole, now)
        if allowed and hole.closed and not self.faults.enabled("ignore_close"):
            allowed = False
        if allowed and self.faults.fires("drop_valid"):
            switch.drop(packet, self.external_port, reason="fw-bug")
            return
        if not allowed:
            switch.drop(packet, self.external_port, reason="fw-no-state")
            return
        if self._is_close(packet):
            self._mark_closed(key)
        switch.inject(packet, self.internal_port)

    # -- state helpers --------------------------------------------------------------
    def _expired(self, hole: Pinhole, now: float) -> bool:
        timeout = self.state_timeout
        if self.faults.enabled("early_expiry"):
            timeout /= 2.0
        return now - hole.refreshed_at > timeout

    def _mark_closed(self, key: PinholeKey) -> None:
        hole = self.pinholes.get(key)
        if hole is not None:
            hole.closed = True

    @staticmethod
    def _is_close(packet: Packet) -> bool:
        tcp = packet.find(TCP)
        return tcp is not None and (tcp.is_fin or tcp.is_rst)

    # -- introspection ----------------------------------------------------------------
    def live_pinholes(self, now: float) -> int:
        return sum(
            1
            for hole in self.pinholes.values()
            if not hole.closed and not self._expired(hole, now)
        )
