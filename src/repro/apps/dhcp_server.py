"""DHCP server — Table 1's DHCP property group.

A lease-pool server speaking the DISCOVER/OFFER/REQUEST/ACK handshake with
lease expiry and RELEASE handling.  Running *two* servers with overlapping
pools (plus the ``overlap_pool`` fault) produces the "no lease overlap
between DHCP servers" violation.

Fault knobs:

* ``reply_delay`` (value, seconds) — ACK later than the property's T
  (violates "reply to lease request within T seconds");
* ``no_reply`` (rate)             — silently ignore a REQUEST;
* ``reuse_leased`` (flag)         — hand out an address that is still
  leased to another client (violates "leased addresses never re-used until
  expiration or release");
* ``ignore_release`` (flag)       — keep a lease alive after RELEASE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.builder import dhcp_packet
from ..packet.dhcp import Dhcp, DhcpMessageType
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults


@dataclass
class Lease:
    """One active address lease."""

    ip: IPv4Address
    client: MACAddress
    granted_at: float
    duration: float

    def expired(self, now: float) -> bool:
        return now >= self.granted_at + self.duration


class DhcpServerApp:
    """A pool-managed DHCP server bound to one switch."""

    def __init__(
        self,
        server_id: IPv4Address,
        pool_start: IPv4Address,
        pool_size: int,
        lease_time: float = 60.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.server_id = server_id
        # A stable MAC for the server, derived from its identifier, so
        # replies carry proper server->client Ethernet addressing (the DHCP
        # properties bind the client from eth.src/eth.dst).
        self.server_mac = MACAddress((0xFE << 40) | (int(server_id) & 0xFFFFFFFF))
        self.pool: List[IPv4Address] = [
            IPv4Address(int(pool_start) + i) for i in range(pool_size)
        ]
        self.lease_time = lease_time
        self.faults = faults if faults is not None else no_faults()
        self.leases: Dict[IPv4Address, Lease] = {}
        self.by_client: Dict[MACAddress, Lease] = {}

    # -- SwitchApp interface ----------------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.leases.clear()
        self.by_client.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        dhcp = packet.find(Dhcp)
        if dhcp is None:
            switch.flood(packet, in_port)
            return
        now = switch.now
        self._reap(now)
        if dhcp.is_discover:
            self._offer(switch, in_port, dhcp, now)
        elif dhcp.is_request:
            self._ack(switch, in_port, dhcp, now)
        elif dhcp.is_release:
            self._release(dhcp)
        # other message types are ignored by this server

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- protocol steps -------------------------------------------------------------------
    def _pick_address(self, client: MACAddress, now: float) -> Optional[IPv4Address]:
        held = self.by_client.get(client)
        if held is not None and not held.expired(now):
            return held.ip
        for ip in self.pool:
            lease = self.leases.get(ip)
            if lease is None or lease.expired(now):
                return ip
            if self.faults.enabled("reuse_leased") and lease.client != client:
                return ip  # hand out someone else's live lease — the bug
        return None

    def _offer(
        self, switch: Switch, in_port: int, dhcp: Dhcp, now: float
    ) -> None:
        ip = self._pick_address(dhcp.client_mac, now)
        if ip is None:
            return  # pool exhausted: silence (clients retry)
        reply = dhcp_packet(
            client_mac=dhcp.client_mac,
            msg_type=DhcpMessageType.OFFER,
            xid=dhcp.xid,
            src_mac=self.server_mac,
            dst_mac=dhcp.client_mac,
            yiaddr=ip,
            lease_time=int(self.lease_time),
            server_id=self.server_id,
            src_ip=self.server_id,
        )
        self._send(switch, in_port, reply)

    def _ack(self, switch: Switch, in_port: int, dhcp: Dhcp, now: float) -> None:
        if dhcp.server_id is not None and dhcp.server_id != self.server_id:
            return  # request addressed to a different server
        if self.faults.fires("no_reply"):
            return
        ip = dhcp.requested_ip or self._pick_address(dhcp.client_mac, now)
        if ip is None:
            return
        lease_ok = self._grant(ip, dhcp.client_mac, now)
        if not lease_ok:
            nak = dhcp_packet(
                client_mac=dhcp.client_mac,
                msg_type=DhcpMessageType.NAK,
                xid=dhcp.xid,
                src_mac=self.server_mac,
                dst_mac=dhcp.client_mac,
                server_id=self.server_id,
                src_ip=self.server_id,
            )
            self._send(switch, in_port, nak)
            return
        ack = dhcp_packet(
            client_mac=dhcp.client_mac,
            msg_type=DhcpMessageType.ACK,
            xid=dhcp.xid,
            src_mac=self.server_mac,
            dst_mac=dhcp.client_mac,
            yiaddr=ip,
            lease_time=int(self.lease_time),
            server_id=self.server_id,
            src_ip=self.server_id,
        )
        self._send(switch, in_port, ack)

    def _grant(self, ip: IPv4Address, client: MACAddress, now: float) -> bool:
        if ip not in self.pool:
            return False
        lease = self.leases.get(ip)
        if (
            lease is not None
            and not lease.expired(now)
            and lease.client != client
            and not self.faults.enabled("reuse_leased")
        ):
            return False
        new_lease = Lease(ip=ip, client=client, granted_at=now,
                          duration=self.lease_time)
        self.leases[ip] = new_lease
        self.by_client[client] = new_lease
        return True

    def _release(self, dhcp: Dhcp) -> None:
        if self.faults.enabled("ignore_release"):
            return
        lease = self.by_client.pop(dhcp.client_mac, None)
        if lease is not None:
            self.leases.pop(lease.ip, None)

    def _send(self, switch: Switch, port: int, reply: Packet) -> None:
        delay = self.faults.value("reply_delay")
        if delay > 0:
            switch.scheduler.call_after(
                delay, lambda: switch.inject(reply, port), label="late-dhcp-reply"
            )
        else:
            switch.inject(reply, port)

    def _reap(self, now: float) -> None:
        expired = [ip for ip, lease in self.leases.items() if lease.expired(now)]
        for ip in expired:
            lease = self.leases.pop(ip)
            if self.by_client.get(lease.client) is lease:
                del self.by_client[lease.client]

    # -- introspection -----------------------------------------------------------------------
    def active_leases(self, now: float) -> int:
        return sum(1 for lease in self.leases.values() if not lease.expired(now))
