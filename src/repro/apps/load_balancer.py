"""L4 load balancer — Table 1's load-balancing property group.

Traffic to a virtual service address is spread over backend ports either by
5-tuple hash or round-robin; an established flow is pinned to its backend
until it closes.  The three Table 1 properties check exactly those
behaviours: "new flows go to hashed port", "new flows go to round-robin
port", and "no change in port until flow closed".

Fault knobs:

* ``misroute_new`` (rate)  — send a brand-new flow to the wrong backend;
* ``rebalance_midflow`` (rate) — re-pick the backend for a live flow;
* ``forget_pin`` (flag)    — never pin: every packet re-hashes (with hash
  mode this is invisible; with round-robin it violates pinning).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

from ..packet.addresses import IPv4Address
from ..packet.headers import TCP, IPv4
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults

FlowKey = Tuple[IPv4Address, int, IPv4Address, int, int]


class BalanceMode(Enum):
    HASH = "hash"
    ROUND_ROBIN = "round-robin"


def flow_hash(key: FlowKey, num_backends: int) -> int:
    """The deterministic hash the 'hashed port' property checks against.

    A simple FNV-1a over the 5-tuple: stable across runs, available to both
    the app and the property specification.
    """
    h = 0xCBF29CE484222325
    for part in (int(key[0]), key[1], int(key[2]), key[3], key[4]):
        for shift in (0, 8, 16, 24):
            h ^= (part >> shift) & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h % num_backends


class LoadBalancerApp:
    """Flow-pinning load balancer in hash or round-robin mode."""

    def __init__(
        self,
        vip: IPv4Address,
        backend_ports: Sequence[int],
        mode: BalanceMode = BalanceMode.HASH,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if len(backend_ports) < 2:
            raise ValueError("load balancer needs at least two backends")
        self.vip = vip
        self.backend_ports = tuple(backend_ports)
        self.mode = mode
        self.faults = faults if faults is not None else no_faults()
        self.flows: Dict[FlowKey, int] = {}
        self._rr_next = 0

    # -- SwitchApp interface -----------------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.flows.clear()
        self._rr_next = 0

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        ip = packet.find(IPv4)
        five = packet.five_tuple()
        if ip is None or five is None or ip.dst != self.vip:
            switch.flood(packet, in_port)
            return
        port = self._pick(five)
        switch.inject(packet, port)
        if self._is_close(packet):
            self.flows.pop(five, None)

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- balancing ------------------------------------------------------------------------
    def _fresh_choice(self, key: FlowKey) -> int:
        if self.mode is BalanceMode.HASH:
            return self.backend_ports[flow_hash(key, len(self.backend_ports))]
        choice = self.backend_ports[self._rr_next % len(self.backend_ports)]
        self._rr_next += 1
        return choice

    def _wrong_choice(self, right: int) -> int:
        others = [p for p in self.backend_ports if p != right]
        return others[0]

    def _pick(self, key: FlowKey) -> int:
        pinned = None if self.faults.enabled("forget_pin") else self.flows.get(key)
        if pinned is not None:
            if self.faults.fires("rebalance_midflow"):
                moved = self._wrong_choice(pinned)
                self.flows[key] = moved
                return moved
            return pinned
        choice = self._fresh_choice(key)
        if self.faults.fires("misroute_new"):
            choice = self._wrong_choice(choice)
        self.flows[key] = choice
        return choice

    @staticmethod
    def _is_close(packet: Packet) -> bool:
        tcp = packet.find(TCP)
        return tcp is not None and (tcp.is_fin or tcp.is_rst)

    # -- introspection -----------------------------------------------------------------------
    def pinned_backend(self, key: FlowKey) -> Optional[int]:
        return self.flows.get(key)
