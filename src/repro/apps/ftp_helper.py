"""FTP application-level gateway and session workload — Table 1's FTP row
(taken by the paper from FAST).

The property "data L4 port matches L4 port given in control stream" checks
*endpoint* behaviour: a client advertising PORT a,b,c,d,p1,p2 must open its
data connection from/to that port.  The :class:`FtpAlgApp` forwards control
and data traffic (optionally enforcing the pinhole like a real ALG);
:func:`ftp_session` generates the two-host workload, with a ``mismatch``
knob that makes the client open the data connection on the wrong port —
the violation the monitor should catch even when the ALG itself doesn't.

Fault knobs on the ALG:

* ``no_enforce`` (flag) — forward any data connection regardless of the
  advertised endpoint (an ALG that doesn't enforce; the monitor then is
  the only line of defence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netsim.workload import TimedPacket
from ..packet.addresses import IPv4Address, MACAddress
from ..packet.builder import ftp_control_packet, tcp_syn
from ..packet.ftp import FTP_CONTROL_PORT, FtpControl, encode_port_command
from ..packet.headers import TCP, IPv4
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults


class FtpAlgApp:
    """Forwarder that tracks advertised FTP data endpoints."""

    def __init__(
        self,
        client_port: int = 1,
        server_port: int = 2,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.client_port = client_port
        self.server_port = server_port
        self.faults = faults if faults is not None else no_faults()
        #: (client_ip, server_ip) -> advertised data port
        self.expected: Dict[Tuple[IPv4Address, IPv4Address], int] = {}

    def setup(self, switch: Switch) -> None:
        self.expected.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        out_port = (
            self.server_port if in_port == self.client_port else self.client_port
        )
        ftp = packet.find(FtpControl)
        ip = packet.find(IPv4)
        if ftp is not None and ip is not None and ftp.advertises_endpoint:
            self.expected[(ip.src, ip.dst)] = ftp.data_port  # type: ignore[assignment]
        tcp = packet.find(TCP)
        if (
            tcp is not None
            and ip is not None
            and ftp is None
            and not self.faults.enabled("no_enforce")
        ):
            key = (ip.src, ip.dst)
            advertised = self.expected.get(key)
            is_data = tcp.dst_port != FTP_CONTROL_PORT and tcp.src_port != FTP_CONTROL_PORT
            if is_data and advertised is not None and tcp.src_port != advertised:
                switch.drop(packet, in_port, reason="alg-port-mismatch")
                return
        switch.inject(packet, out_port)

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass


def ftp_session(
    client_mac: MACAddress,
    server_mac: MACAddress,
    client_ip: IPv4Address,
    server_ip: IPv4Address,
    advertised_port: int,
    actual_port: Optional[int] = None,
    client_host: int = 1,
    server_host: int = 2,
    start: float = 0.0,
    step: float = 0.01,
) -> List[TimedPacket]:
    """One active-mode FTP session as a timed workload.

    Control handshake, a PORT command advertising ``advertised_port``, the
    server's 200 reply, then the client's data connection opened from
    ``actual_port`` (defaults to the advertised one — pass a different
    value to create the property violation).
    """
    if actual_port is None:
        actual_port = advertised_port
    ctl_port = 51000
    t = start
    out: List[TimedPacket] = []

    def control(line: str, to_server: bool) -> Packet:
        src = (client_mac, client_ip) if to_server else (server_mac, server_ip)
        dst = (server_mac, server_ip) if to_server else (client_mac, client_ip)
        return ftp_control_packet(
            src[0], dst[0], src[1], dst[1], ctl_port, line, to_server=to_server
        )

    out.append(TimedPacket(t, client_host, control("USER anonymous", True)))
    t += step
    out.append(TimedPacket(t, server_host, control("331 Please specify password", False)))
    t += step
    out.append(
        TimedPacket(
            t, client_host, control(encode_port_command(client_ip, advertised_port), True)
        )
    )
    t += step
    out.append(TimedPacket(t, server_host, control("200 PORT command successful", False)))
    t += step
    out.append(TimedPacket(t, client_host, control("RETR file.txt", True)))
    t += step
    # Active mode: the server opens the data connection from port 20 toward
    # the client's advertised port.  ``actual_port`` different from the
    # advertised one is the property violation.
    out.append(
        TimedPacket(
            t,
            server_host,
            tcp_syn(server_mac, client_mac, server_ip, client_ip,
                    20, actual_port),
        )
    )
    return out
