"""The monitored network functions.

Each application is a controller-style program (:class:`SwitchApp`) with
explicit fault-injection knobs — the bugs that *create* the property
violations the monitor catches.  These are the systems whose correctness
the paper's properties describe: learning switch, stateful firewall, NAT,
ARP cache proxy, DHCP server, load balancer, port-knocking gateway, FTP
gateway.
"""

from .arp_proxy import ArpProxyApp, DhcpSnooper
from .dhcp_server import DhcpServerApp, Lease
from .faults import FaultPlan, always, no_faults, sometimes
from .ftp_helper import FtpAlgApp, ftp_session
from .learning_switch import LearningSwitchApp, install_dataplane_learning
from .load_balancer import BalanceMode, LoadBalancerApp, flow_hash
from .nat import NatApp, Translation
from .port_knocking import PortKnockingApp
from .stateful_firewall import Pinhole, StatefulFirewallApp

__all__ = [
    "ArpProxyApp",
    "DhcpSnooper",
    "DhcpServerApp",
    "Lease",
    "FaultPlan",
    "always",
    "no_faults",
    "sometimes",
    "FtpAlgApp",
    "ftp_session",
    "LearningSwitchApp",
    "install_dataplane_learning",
    "BalanceMode",
    "LoadBalancerApp",
    "flow_hash",
    "NatApp",
    "Translation",
    "PortKnockingApp",
    "Pinhole",
    "StatefulFirewallApp",
]
