"""Deterministic fault injection for the monitored applications.

Every app takes a :class:`FaultPlan` describing the bugs to inject; a
correct app uses :func:`no_faults`.  Faults are what *create* property
violations — the monitor's job is to catch them.  All randomness is seeded
so violation traces are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class FaultPlan:
    """A seeded source of injected-failure decisions.

    ``rates`` maps fault names to probabilities in [0, 1]; ``flags`` are
    always-on behavioural bugs; ``values`` carry fault *parameters* with
    units (e.g. ``reply_delay`` in seconds), validated finite and
    non-negative.  Apps consult :meth:`fires` (probabilistic),
    :meth:`enabled` (boolean), and :meth:`value`.

    Each fault name draws from its own derived RNG stream
    (``Random(f"{seed}:{name}")``), so adding or removing one fault never
    reshuffles the firing pattern of the others under the same seed.
    """

    rates: Dict[str, float] = field(default_factory=dict)
    flags: Dict[str, bool] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)
    seed: int = 1234

    def __post_init__(self) -> None:
        for name, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {name}={rate!r} outside [0, 1]")
        for name, value in self.values.items():
            if not 0.0 <= value < float("inf"):
                raise ValueError(
                    f"fault value {name}={value!r} must be finite and "
                    "non-negative")
        self._rngs: Dict[str, random.Random] = {}

    def _stream(self, name: str) -> random.Random:
        rng = self._rngs.get(name)
        if rng is None:
            # Seeding from a string is deterministic (sha512-based), unlike
            # hash(), which is salted per process.
            rng = self._rngs[name] = random.Random(f"{self.seed}:{name}")
        return rng

    def fires(self, name: str) -> bool:
        """Roll the dice for a probabilistic fault (False if unconfigured)."""
        rate = self.rates.get(name, 0.0)
        if rate <= 0.0:
            return False
        return self._stream(name).random() < rate

    def enabled(self, name: str) -> bool:
        return self.flags.get(name, False)

    def value(self, name: str, default: float = 0.0) -> float:
        """Read a fault parameter (e.g. a delay in seconds)."""
        return self.values.get(name, default)

    def count(self, name: str, n: int) -> int:
        """Expected firing count helper for tests (not consuming RNG)."""
        return int(round(self.rates.get(name, 0.0) * n))


def no_faults() -> FaultPlan:
    """A plan that never injects anything: the correct implementation."""
    return FaultPlan()


def always(name: str) -> FaultPlan:
    """A plan with one always-on flag fault."""
    return FaultPlan(flags={name: True})


def sometimes(name: str, rate: float, seed: int = 1234) -> FaultPlan:
    """A plan with one probabilistic fault."""
    return FaultPlan(rates={name: rate}, seed=seed)
