"""Network address translation — the worked example of Sec. 2.2.

Outbound packets (internal port) get a fresh public (address, port) pair
per (A, P, B, Q) flow; inbound packets addressed to a translation's public
endpoint are rewritten back to (A, P).  Rewrites go through
:func:`repro.switch.rewrite.rewrite_field`, which preserves the packet
``uid`` — so the NAT property's "the same packet" observations (Feature 5)
hold across the rewrite.

Fault knobs:

* ``corrupt_reverse`` (rate) — rewrite a return packet's destination to the
  wrong internal port (P'' != P): the four-observation NAT property's
  violation;
* ``corrupt_reverse_ip`` (rate) — rewrite to the wrong internal address
  (A'' != A), the other arm of the property's final disjunction;
* ``drop_unknown`` vs default: inbound packets with no matching translation
  are always dropped (that is correct NAT behaviour, not a fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..packet.addresses import IPv4Address
from ..packet.headers import IPv4
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.rewrite import rewrite_field
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults

FlowKey = Tuple[IPv4Address, int, IPv4Address, int]  # (A, P, B, Q)
PublicKey = Tuple[IPv4Address, int]  # (A', P')


@dataclass(frozen=True)
class Translation:
    """One active NAT mapping."""

    internal_ip: IPv4Address
    internal_port: int
    public_ip: IPv4Address
    public_port: int
    remote_ip: IPv4Address
    remote_port: int


class NatApp:
    """Port-translating NAT between an internal and an external port."""

    def __init__(
        self,
        public_ip: IPv4Address,
        internal_port: int = 1,
        external_port: int = 2,
        port_base: int = 40000,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.public_ip = public_ip
        self.internal_port = internal_port
        self.external_port = external_port
        self.port_base = port_base
        self.faults = faults if faults is not None else no_faults()
        self.by_flow: Dict[FlowKey, Translation] = {}
        self.by_public: Dict[PublicKey, Translation] = {}
        self._next_port = port_base

    # -- SwitchApp interface -------------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.by_flow.clear()
        self.by_public.clear()
        self._next_port = self.port_base

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        ip = packet.find(IPv4)
        sport, dport = packet.l4_sport, packet.l4_dport
        if ip is None or sport is None or dport is None:
            switch.drop(packet, in_port, reason="not-translatable")
            return
        if in_port == self.internal_port:
            self._outbound(switch, packet, ip, sport, dport)
        elif in_port == self.external_port:
            self._inbound(switch, packet, ip, sport, dport)
        else:
            switch.drop(packet, in_port, reason="unknown-port")

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- translation ------------------------------------------------------------------
    def _allocate(self, key: FlowKey) -> Translation:
        translation = self.by_flow.get(key)
        if translation is not None:
            return translation
        public_port = self._next_port
        self._next_port += 1
        translation = Translation(
            internal_ip=key[0],
            internal_port=key[1],
            public_ip=self.public_ip,
            public_port=public_port,
            remote_ip=key[2],
            remote_port=key[3],
        )
        self.by_flow[key] = translation
        self.by_public[(self.public_ip, public_port)] = translation
        return translation

    def _outbound(
        self, switch: Switch, packet: Packet, ip: IPv4, sport: int, dport: int
    ) -> None:
        translation = self._allocate((ip.src, sport, ip.dst, dport))
        rewritten = rewrite_field(packet, "ipv4.src", translation.public_ip)
        rewritten = rewrite_field(rewritten, "l4.src", translation.public_port)
        switch.inject(rewritten, self.external_port)

    def _inbound(
        self, switch: Switch, packet: Packet, ip: IPv4, sport: int, dport: int
    ) -> None:
        translation = self.by_public.get((ip.dst, dport))
        if translation is None:
            switch.drop(packet, self.external_port, reason="nat-no-mapping")
            return
        dst_ip = translation.internal_ip
        dst_port = translation.internal_port
        if self.faults.fires("corrupt_reverse"):
            dst_port = translation.internal_port + 1  # P'' != P
        if self.faults.fires("corrupt_reverse_ip"):
            dst_ip = IPv4Address(int(translation.internal_ip) + 1)  # A'' != A
        rewritten = rewrite_field(packet, "ipv4.dst", dst_ip)
        rewritten = rewrite_field(rewritten, "l4.dst", dst_port)
        switch.inject(rewritten, self.internal_port)

    # -- introspection ------------------------------------------------------------------
    def translation_count(self) -> int:
        return len(self.by_flow)
