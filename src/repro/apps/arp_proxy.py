"""ARP cache proxy — the worked example of Sec. 2.3 and Table 1's first
property group.

The proxy learns IP-to-MAC mappings from ARP replies (and gratuitously from
request senders), answers requests for *known* addresses directly from the
cache, and forwards (floods) requests for *unknown* addresses.  An optional
:class:`DhcpSnooper` hookup pre-loads the cache from observed DHCP leases —
the wandering-match "DHCP + ARP Proxy" rows of Table 1.

Fault knobs:

* ``forward_known`` (rate)   — flood a request it should have answered
  (violates "requests for known addresses are not forwarded");
* ``suppress_reply`` (rate)  — neither answer nor forward (violates both
  "requests for unknown addresses are forwarded" and, for known addresses,
  "reply within T" — the negative observation / timeout action case);
* ``reply_delay`` (value via ``FaultPlan.rates['reply_delay']`` seconds,
  interpreted as a delay, not a probability) — answer, but late;
* ``skip_preload`` (flag)    — ignore DHCP-derived knowledge (violates
  "pre-load ARP cache with leased addresses");
* ``reply_unknown`` (flag)   — fabricate replies for addresses it has no
  knowledge of (violates "no direct reply if neither pre-loaded nor prior
  reply seen").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..packet.addresses import IPv4Address, MACAddress
from ..packet.builder import arp_reply
from ..packet.headers import Arp
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults

#: MAC the proxy answers with when fabricating replies (reply_unknown).
_FABRICATED_MAC = MACAddress(0xBADBADBAD)


class ArpProxyApp:
    """Proxy-ARP with a learned (and optionally DHCP-preloaded) cache."""

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self.faults = faults if faults is not None else no_faults()
        self.cache: Dict[IPv4Address, MACAddress] = {}

    # -- SwitchApp interface ---------------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.cache.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        arp = packet.find(Arp)
        if arp is None:
            switch.flood(packet, in_port)  # proxy only interprets ARP
            return
        if arp.is_reply:
            self.cache[arp.sender_ip] = arp.sender_mac
            switch.flood(packet, in_port)
            return
        # A request: learn the sender opportunistically, then decide.
        self.cache.setdefault(arp.sender_ip, arp.sender_mac)
        known = self.cache.get(arp.target_ip)
        if known is not None:
            if self.faults.fires("forward_known"):
                switch.flood(packet, in_port)
                return
            if self.faults.fires("suppress_reply"):
                switch.drop(packet, in_port, reason="proxy-bug-suppressed")
                return
            self._answer(switch, in_port, arp, known)
            return
        if self.faults.enabled("reply_unknown"):
            self._answer(switch, in_port, arp, _FABRICATED_MAC)
            return
        if self.faults.fires("suppress_reply"):
            switch.drop(packet, in_port, reason="proxy-bug-suppressed")
            return
        switch.flood(packet, in_port)

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- cache management --------------------------------------------------------------
    def preload(self, ip: IPv4Address, mac: MACAddress) -> None:
        """Install a mapping from out-of-band knowledge (DHCP snooping)."""
        if self.faults.enabled("skip_preload"):
            return
        self.cache[ip] = mac

    def _answer(
        self, switch: Switch, in_port: int, arp: Arp, mac: MACAddress
    ) -> None:
        reply = arp_reply(
            sender_mac=mac,
            sender_ip=arp.target_ip,
            target_mac=arp.sender_mac,
            target_ip=arp.sender_ip,
        )
        delay = self.faults.value("reply_delay")
        if delay > 0:
            switch.scheduler.call_after(
                delay, lambda: switch.inject(reply, in_port), label="late-arp-reply"
            )
        else:
            switch.inject(reply, in_port)

    # -- introspection --------------------------------------------------------------------
    def knows(self, ip: IPv4Address) -> bool:
        return ip in self.cache


class DhcpSnooper:
    """Tap that feeds observed DHCP ACKs into an ARP proxy's cache.

    Attach with ``switch.add_tap(snooper.observe)``.  This is the substrate
    behaviour behind Table 1's "Pre-load ARP cache with leased addresses":
    the *property* checks that the proxy actually honours this knowledge.
    """

    def __init__(self, proxy: ArpProxyApp) -> None:
        self.proxy = proxy
        self.leases_seen: Dict[IPv4Address, MACAddress] = {}

    def observe(self, event) -> None:
        from ..packet.dhcp import Dhcp
        from ..switch.events import PacketEgress

        if not isinstance(event, PacketEgress):
            return
        dhcp = event.packet.find(Dhcp)
        if dhcp is None or not dhcp.is_ack:
            return
        self.leases_seen[dhcp.yiaddr] = dhcp.client_mac
        self.proxy.preload(dhcp.yiaddr, dhcp.client_mac)
