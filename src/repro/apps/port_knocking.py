"""Port-knocking gateway — Table 1's port-knocking property group
(originally from Varanus).

A client earns access to the protected port by hitting a secret sequence of
knock ports in order; any wrong guess in between invalidates the progress.
The two properties check each half: "intervening guesses invalidate
sequence" and "recognize valid sequence".

Fault knobs:

* ``ignore_wrong_guess`` (flag) — progress survives an out-of-sequence
  knock (violates invalidation);
* ``never_open`` (flag)         — completing the sequence grants nothing
  (violates recognition);
* ``open_after_partial`` (flag) — grant access after only the first knock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..packet.addresses import IPv4Address
from ..packet.headers import TCP, UDP, IPv4
from ..packet.packet import Packet
from ..switch.events import OutOfBandEvent
from ..switch.switch import Switch
from .faults import FaultPlan, no_faults


class PortKnockingApp:
    """Knock-sequence gatekeeper in front of a protected TCP port."""

    def __init__(
        self,
        knock_sequence: Sequence[int],
        protected_port: int,
        server_port: int = 2,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if len(knock_sequence) < 2:
            raise ValueError("knock sequence needs at least two ports")
        if protected_port in knock_sequence:
            raise ValueError("protected port cannot be part of the sequence")
        self.knock_sequence = tuple(knock_sequence)
        self.protected_port = protected_port
        self.server_port = server_port
        self.faults = faults if faults is not None else no_faults()
        self.progress: Dict[IPv4Address, int] = {}
        self.granted: Set[IPv4Address] = set()

    # -- SwitchApp interface --------------------------------------------------------
    def setup(self, switch: Switch) -> None:
        self.progress.clear()
        self.granted.clear()

    def on_packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        ip = packet.find(IPv4)
        dport = packet.l4_dport
        if ip is None or dport is None:
            switch.drop(packet, in_port, reason="pk-non-l4")
            return
        src = ip.src
        if dport == self.protected_port:
            if src in self.granted:
                switch.inject(packet, self.server_port)
            else:
                switch.drop(packet, in_port, reason="pk-denied")
            return
        self._knock(src, dport)
        # Knock packets themselves are absorbed (standard knockd behaviour).
        switch.drop(packet, in_port, reason="pk-knock")

    def on_oob(self, switch: Switch, event: OutOfBandEvent) -> None:
        pass

    # -- sequence tracking -------------------------------------------------------------
    def _knock(self, src: IPv4Address, dport: int) -> None:
        at = self.progress.get(src, 0)
        expected = self.knock_sequence[at] if at < len(self.knock_sequence) else None
        if dport == expected:
            at += 1
            self.progress[src] = at
            if self.faults.enabled("open_after_partial") and at >= 1:
                self.granted.add(src)
                return
            if at == len(self.knock_sequence):
                if not self.faults.enabled("never_open"):
                    self.granted.add(src)
                self.progress[src] = 0
            return
        # A wrong guess: reset progress (unless the bug says otherwise).
        if not self.faults.enabled("ignore_wrong_guess"):
            self.progress[src] = 0
            self.granted.discard(src)

    # -- introspection --------------------------------------------------------------------
    def has_access(self, src: IPv4Address) -> bool:
        return src in self.granted
