"""Shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; setuptools>=61 reads it from there.
This file exists so `pip install -e . --no-use-pep517` works offline.
"""
from setuptools import setup

setup()
